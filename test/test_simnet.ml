(* Tests for the discrete-event network substrate: event queue, engine,
   FIFO accounting, packets, switch congestion point, sources, the
   dumbbell runner, the victim topology and the QCN variant. *)

open Numerics

let checkf eps = Alcotest.(check (float eps))

(* ---------------- Eventq ---------------- *)

let test_eventq_ordering () =
  let q = Simnet.Eventq.create () in
  List.iter (fun (t, v) -> Simnet.Eventq.push q t v)
    [ (3., "c"); (1., "a"); (2., "b") ];
  let drained = Simnet.Eventq.drain q in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.map snd drained)

let test_eventq_fifo_ties () =
  let q = Simnet.Eventq.create () in
  List.iter (fun v -> Simnet.Eventq.push q 1. v) [ "first"; "second"; "third" ];
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ]
    (List.map snd (Simnet.Eventq.drain q))

let test_eventq_interleaved () =
  let q = Simnet.Eventq.create () in
  Simnet.Eventq.push q 5. 5;
  Simnet.Eventq.push q 1. 1;
  (match Simnet.Eventq.pop q with
  | Some (t, 1) -> checkf 1e-12 "t" 1. t
  | _ -> Alcotest.fail "expected 1");
  Simnet.Eventq.push q 3. 3;
  Alcotest.(check int) "size" 2 (Simnet.Eventq.size q);
  match Simnet.Eventq.peek q with
  | Some (_, 3) -> ()
  | _ -> Alcotest.fail "expected 3 at head"

let test_eventq_nan_rejected () =
  let q = Simnet.Eventq.create () in
  Alcotest.(check bool) "nan key" true
    (try
       Simnet.Eventq.push q nan 0;
       false
     with Invalid_argument _ -> true)

let prop_eventq_sorted =
  QCheck.Test.make ~name:"drain is sorted for random pushes" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 200) (float_range 0. 1e6))
    (fun keys ->
      let q = Simnet.Eventq.create () in
      List.iteri (fun i k -> Simnet.Eventq.push q k i) keys;
      let drained = List.map fst (Simnet.Eventq.drain q) in
      List.sort compare drained = drained)

let prop_eventq_conserves =
  QCheck.Test.make ~name:"push count = drain count" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 100) (float_range 0. 100.))
    (fun keys ->
      let q = Simnet.Eventq.create () in
      List.iteri (fun i k -> Simnet.Eventq.push q k i) keys;
      List.length (Simnet.Eventq.drain q) = List.length keys)

(* Keys drawn from {0..3} so ties are the common case: payloads with
   equal keys must drain in insertion order. *)
let prop_eventq_fifo_under_ties =
  QCheck.Test.make ~name:"equal keys drain in insertion order" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 150) (int_range 0 3))
    (fun keys ->
      let q = Simnet.Eventq.create () in
      List.iteri (fun i k -> Simnet.Eventq.push q (float_of_int k) i) keys;
      let drained = Simnet.Eventq.drain q in
      (* for every key, the payload sequence must be increasing *)
      List.for_all
        (fun k ->
          let payloads =
            List.filter_map
              (fun (key, v) -> if key = float_of_int k then Some v else None)
              drained
          in
          List.sort compare payloads = payloads)
        [ 0; 1; 2; 3 ])

(* Interleaved push/pop sequences against the seed implementation
   ([Eventq_boxed]) as the oracle: both queues must agree on every
   popped (key, payload) pair and on the final size. Keys are tie-prone
   on purpose — this pins the FIFO tie-break across the rewrite. *)
let prop_eventq_matches_boxed_oracle =
  QCheck.Test.make ~name:"interleaved ops match the boxed oracle" ~count:300
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 200)
        (option (int_range 0 7)))
    (fun ops ->
      let q = Simnet.Eventq.create () in
      let oracle = Simnet.Eventq_boxed.create () in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some k ->
              let key = float_of_int k in
              Simnet.Eventq.push q key !next;
              Simnet.Eventq_boxed.push oracle key !next;
              incr next;
              Simnet.Eventq.size q = Simnet.Eventq_boxed.size oracle
          | None -> (
              match (Simnet.Eventq.pop q, Simnet.Eventq_boxed.pop oracle) with
              | None, None -> true
              | Some (k1, v1), Some (k2, v2) -> k1 = k2 && v1 = v2
              | _ -> false))
        ops
      && Simnet.Eventq.size q = Simnet.Eventq_boxed.size oracle)

(* The calendar-queue variant must be observationally identical to the
   heap: same popped (key, payload) pairs under interleaved push/pop,
   including FIFO tie-breaks. Tie-prone integer keys exercise the
   FIFO path; the op count is large enough to cross the calendar's
   grow/shrink thresholds repeatedly. *)
let prop_calendar_matches_heap =
  QCheck.Test.make ~name:"calendar queue matches the heap under interleaving"
    ~count:300
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 300)
        (option (int_range 0 7)))
    (fun ops ->
      let q = Simnet.Eventq_calendar.create () in
      let oracle = Simnet.Eventq.create () in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some k ->
              let key = float_of_int k in
              Simnet.Eventq_calendar.push q key !next;
              Simnet.Eventq.push oracle key !next;
              incr next;
              Simnet.Eventq_calendar.size q = Simnet.Eventq.size oracle
          | None -> (
              match
                (Simnet.Eventq_calendar.pop q, Simnet.Eventq.pop oracle)
              with
              | None, None -> true
              | Some (k1, v1), Some (k2, v2) -> k1 = k2 && v1 = v2
              | _ -> false))
        ops
      && Simnet.Eventq_calendar.size q = Simnet.Eventq.size oracle)

(* Same oracle over continuous keys (bucket spreading instead of ties)
   plus an engine-like advancing-time pattern: keys pushed near the
   current minimum, as packet schedulers do, which drags the calendar
   cursor forward through year wraps. *)
let prop_calendar_matches_heap_continuous =
  QCheck.Test.make
    ~name:"calendar queue matches the heap on advancing float keys"
    ~count:200
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 250)
        (option (float_range 0. 10.)))
    (fun ops ->
      let q = Simnet.Eventq_calendar.create () in
      let oracle = Simnet.Eventq.create () in
      let now = ref 0. in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some dt ->
              let key = !now +. dt in
              Simnet.Eventq_calendar.push q key !next;
              Simnet.Eventq.push oracle key !next;
              incr next;
              true
          | None -> (
              match
                (Simnet.Eventq_calendar.pop q, Simnet.Eventq.pop oracle)
              with
              | None, None -> true
              | Some (k1, v1), Some (k2, v2) ->
                  now := k1;
                  k1 = k2 && v1 = v2
              | _ -> false))
        ops
      && Simnet.Eventq_calendar.size q = Simnet.Eventq.size oracle)

let test_eventq_clear () =
  let q = Simnet.Eventq.create () in
  for i = 0 to 9 do
    Simnet.Eventq.push q (float_of_int i) i
  done;
  Simnet.Eventq.clear q;
  Alcotest.(check bool) "empty after clear" true (Simnet.Eventq.is_empty q);
  Alcotest.(check bool) "pop after clear" true (Simnet.Eventq.pop q = None);
  (* the queue must be reusable after clear *)
  Simnet.Eventq.push q 2. 2;
  Simnet.Eventq.push q 1. 1;
  Alcotest.(check (list int)) "reusable" [ 1; 2 ]
    (List.map snd (Simnet.Eventq.drain q))

(* The pop space-leak fix: a popped (or cleared) payload must not stay
   reachable through the queue's internal storage. Observed through a
   weak pointer after a full major collection. *)
let test_eventq_does_not_pin_payloads () =
  let q = Simnet.Eventq.create () in
  Simnet.Eventq.push q 5. (ref (-1));
  let w : int ref Weak.t = Weak.create 2 in
  (let v = ref 1 in
   Weak.set w 0 (Some v);
   Simnet.Eventq.push q 1. v);
  (match Simnet.Eventq.pop q with
  | Some (_, r) -> Alcotest.(check int) "popped payload" 1 !r
  | None -> Alcotest.fail "expected a payload");
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check w 0);
  (let v = ref 2 in
   Weak.set w 1 (Some v);
   Simnet.Eventq.push q 0.5 v);
  Simnet.Eventq.clear q;
  Gc.full_major ();
  Alcotest.(check bool) "cleared payload collected" false (Weak.check w 1)

(* ---------------- Engine ---------------- *)

let test_engine_order_and_clock () =
  let e = Simnet.Engine.create () in
  let log = ref [] in
  Simnet.Engine.schedule e ~delay:2. (fun e ->
      log := ("b", Simnet.Engine.now e) :: !log);
  Simnet.Engine.schedule e ~delay:1. (fun e ->
      log := ("a", Simnet.Engine.now e) :: !log;
      (* nested scheduling *)
      Simnet.Engine.schedule e ~delay:0.5 (fun e ->
          log := ("a2", Simnet.Engine.now e) :: !log));
  Simnet.Engine.run e;
  match List.rev !log with
  | [ ("a", t1); ("a2", t2); ("b", t3) ] ->
      checkf 1e-12 "a at 1" 1. t1;
      checkf 1e-12 "a2 at 1.5" 1.5 t2;
      checkf 1e-12 "b at 2" 2. t3
  | _ -> Alcotest.fail "wrong event order"

let test_engine_until () =
  let e = Simnet.Engine.create () in
  let fired = ref 0 in
  Simnet.Engine.schedule e ~delay:1. (fun _ -> incr fired);
  Simnet.Engine.schedule e ~delay:5. (fun _ -> incr fired);
  Simnet.Engine.run ~until:2. e;
  Alcotest.(check int) "only first fired" 1 !fired;
  checkf 1e-12 "clock at horizon" 2. (Simnet.Engine.now e);
  Alcotest.(check int) "second still pending" 1 (Simnet.Engine.pending e)

let test_engine_until_boundary () =
  (* an event at exactly the horizon fires; one just past it does not,
     and the clock still lands exactly on the horizon *)
  let e = Simnet.Engine.create () in
  let fired = ref [] in
  Simnet.Engine.schedule e ~delay:2. (fun _ -> fired := 2 :: !fired);
  Simnet.Engine.schedule e ~delay:(2. +. epsilon_float *. 8.) (fun _ ->
      fired := 3 :: !fired);
  Simnet.Engine.run ~until:2. e;
  Alcotest.(check (list int)) "boundary event fired" [ 2 ] !fired;
  checkf 0. "clock exactly at horizon" 2. (Simnet.Engine.now e);
  Alcotest.(check int) "past-boundary event pending" 1
    (Simnet.Engine.pending e);
  (* resuming past the horizon runs the remaining event *)
  Simnet.Engine.run e;
  Alcotest.(check (list int)) "remaining event fired" [ 3; 2 ] !fired

let test_engine_stop () =
  let e = Simnet.Engine.create () in
  let fired = ref 0 in
  Simnet.Engine.schedule e ~delay:1. (fun e ->
      incr fired;
      Simnet.Engine.stop e);
  Simnet.Engine.schedule e ~delay:2. (fun _ -> incr fired);
  Simnet.Engine.run e;
  Alcotest.(check int) "stopped after first" 1 !fired

let test_engine_rejects_past () =
  let e = Simnet.Engine.create () in
  Alcotest.(check bool) "negative delay" true
    (try
       Simnet.Engine.schedule e ~delay:(-1.) (fun _ -> ());
       false
     with Invalid_argument _ -> true)

(* ---------------- Fifo ---------------- *)

let test_fifo_accounting () =
  let f = Simnet.Fifo.create ~capacity_bits:30000. in
  let p1 = Simnet.Packet.make_data ~seq:0 ~now:0. ~flow:0 ~rrt:None in
  let p2 = Simnet.Packet.make_data ~seq:1 ~now:0. ~flow:1 ~rrt:None in
  let p3 = Simnet.Packet.make_data ~seq:2 ~now:0. ~flow:2 ~rrt:None in
  Alcotest.(check bool) "p1 accepted" true (Simnet.Fifo.enqueue f p1);
  Alcotest.(check bool) "p2 accepted" true (Simnet.Fifo.enqueue f p2);
  (* third 12000-bit frame exceeds 30000 bits *)
  Alcotest.(check bool) "p3 dropped" false (Simnet.Fifo.enqueue f p3);
  Alcotest.(check int) "drops" 1 (Simnet.Fifo.drops f);
  checkf 1e-9 "occupancy" 24000. (Simnet.Fifo.occupancy_bits f);
  (match Simnet.Fifo.dequeue f with
  | Some p -> Alcotest.(check int) "FIFO order" 0 p.Simnet.Packet.seq
  | None -> Alcotest.fail "dequeue failed");
  checkf 1e-9 "occupancy after dequeue" 12000. (Simnet.Fifo.occupancy_bits f);
  checkf 1e-9 "conservation"
    (Simnet.Fifo.enqueued_bits f)
    (Simnet.Fifo.dequeued_bits f +. Simnet.Fifo.occupancy_bits f)

(* ---------------- Packet ---------------- *)

let test_packet_constructors () =
  let d = Simnet.Packet.make_data ~seq:7 ~now:1.5 ~flow:3 ~rrt:(Some 9) in
  Alcotest.(check bool) "is data" true (Simnet.Packet.is_data d);
  Alcotest.(check (option int)) "flow" (Some 3) (Simnet.Packet.flow_of d);
  Alcotest.(check int) "bits" 12000 d.Simnet.Packet.bits;
  let b = Simnet.Packet.make_bcn ~seq:0 ~now:0. ~flow:1 ~fb:(-2.) ~cpid:4 in
  Alcotest.(check bool) "bcn not data" false (Simnet.Packet.is_data b);
  let p = Simnet.Packet.make_pause ~seq:0 ~now:0. ~on:true in
  Alcotest.(check (option int)) "pause has no flow" None
    (Simnet.Packet.flow_of p)

let test_packet_pool_reuse () =
  let pool = Simnet.Packet.Pool.create () in
  let p1 =
    Simnet.Packet.Pool.alloc_data pool ~seq:0 ~now:1. ~flow:2 ~rrt:None
  in
  Simnet.Packet.Pool.release pool p1;
  Alcotest.(check int) "nothing live" 0 (Simnet.Packet.Pool.live pool);
  let p2 =
    Simnet.Packet.Pool.alloc_data pool ~seq:9 ~now:3. ~flow:5 ~rrt:(Some 1)
  in
  Alcotest.(check bool) "frame recycled, not reallocated" true (p1 == p2);
  Alcotest.(check int) "created only once" 1 (Simnet.Packet.Pool.created pool);
  (* the recycled frame carries the new fields, not stale ones *)
  Alcotest.(check int) "seq rewritten" 9 p2.Simnet.Packet.seq;
  checkf 0. "timestamp rewritten" 3. (Simnet.Packet.born p2);
  (match p2.Simnet.Packet.kind with
  | Simnet.Packet.Data { flow; rrt } ->
      Alcotest.(check int) "flow rewritten" 5 flow;
      Alcotest.(check (option int)) "rrt rewritten" (Some 1) rrt
  | _ -> Alcotest.fail "expected a data frame");
  Simnet.Packet.Pool.release pool p2;
  Alcotest.(check int) "pooled again" 1 (Simnet.Packet.Pool.pooled pool)

(* ---------------- Switch ---------------- *)

let params = Fluid.Params.with_buffer Fluid.Params.default 15e6

let mk_switch ?(cfg_mod = fun c -> c) () =
  let msgs = ref [] in
  let sw =
    Simnet.Switch.create
      (cfg_mod (Simnet.Switch.default_config params ~cpid:1))
      ~control_out:(fun _e pkt -> msgs := pkt :: !msgs)
  in
  Simnet.Switch.set_forward sw (fun _e _pkt -> ());
  (sw, msgs)

let feed sw e n flow =
  for i = 0 to n - 1 do
    Simnet.Switch.receive sw e
      (Simnet.Packet.make_data ~seq:i ~now:(Simnet.Engine.now e) ~flow ~rrt:None)
  done

let test_switch_sampling_rate () =
  let sw, _ = mk_switch () in
  let e = Simnet.Engine.create () in
  feed sw e 1000 0;
  Simnet.Engine.run e;
  (* pm = 0.01 -> every 100th frame *)
  Alcotest.(check int) "10 samples over 1000 frames" 10
    (Simnet.Switch.stats sw).Simnet.Switch.sampled

let test_switch_positive_feedback_when_below_q0 () =
  let sw, msgs = mk_switch () in
  let e = Simnet.Engine.create () in
  (* run to completion after each push so the queue drains: q stays ~0,
     sigma = q0 - w dq > 0 *)
  for i = 0 to 199 do
    Simnet.Engine.schedule e ~delay:(1e-5 *. float_of_int i) (fun e ->
        Simnet.Switch.receive sw e
          (Simnet.Packet.make_data ~seq:i ~now:(Simnet.Engine.now e) ~flow:0
             ~rrt:None))
  done;
  Simnet.Engine.run e;
  let pos =
    List.filter
      (fun (p : Simnet.Packet.t) ->
        match p.Simnet.Packet.kind with
        | Simnet.Packet.Bcn { fb; _ } -> fb > 0.
        | _ -> false)
      !msgs
  in
  Alcotest.(check bool) "positive BCN emitted" true (List.length pos >= 1)

let test_switch_negative_feedback_when_congested () =
  let sw, msgs = mk_switch () in
  let e = Simnet.Engine.create () in
  (* slam 600 frames in at t=0: queue builds to 7.2 Mbit > q0 *)
  feed sw e 600 0;
  Simnet.Engine.run ~until:1e-7 e;
  let neg =
    List.exists
      (fun (p : Simnet.Packet.t) ->
        match p.Simnet.Packet.kind with
        | Simnet.Packet.Bcn { fb; _ } -> fb < 0.
        | _ -> false)
      !msgs
  in
  Alcotest.(check bool) "negative BCN emitted" true neg

let test_switch_pause_thresholds () =
  let sw, msgs = mk_switch () in
  let e = Simnet.Engine.create () in
  (* fill beyond qsc = 13.5 Mbit: 1200 frames = 14.4 Mbit *)
  feed sw e 1200 0;
  Alcotest.(check bool) "pause issued" true (Simnet.Switch.upstream_paused sw);
  (* drain: forwards at 10G; run long enough to empty *)
  Simnet.Engine.run ~until:0.01 e;
  Alcotest.(check bool) "pause lifted after draining" false
    (Simnet.Switch.upstream_paused sw);
  let pauses =
    List.filter
      (fun (p : Simnet.Packet.t) ->
        match p.Simnet.Packet.kind with
        | Simnet.Packet.Pause _ -> true
        | _ -> false)
      !msgs
  in
  Alcotest.(check int) "one on + one off" 2 (List.length pauses)

(* The queue level at which the switch lifts PAUSE is configurable
   ([pause_resume] * qsc, default 0.9). Capture the occupancy at the
   moment the off-frame is emitted and pin it to the configured level:
   just below threshold, within one dequeued frame. *)
let resume_queue_level ~pause_resume =
  let level = ref nan in
  let sw_ref = ref None in
  let cfg =
    {
      (Simnet.Switch.default_config params ~cpid:1) with
      Simnet.Switch.pause_resume;
    }
  in
  let sw =
    Simnet.Switch.create cfg ~control_out:(fun _e pkt ->
        match pkt.Simnet.Packet.kind with
        | Simnet.Packet.Pause { on = false } -> (
            match !sw_ref with
            | Some s -> level := Simnet.Switch.queue_bits s
            | None -> ())
        | _ -> ())
  in
  sw_ref := Some sw;
  Simnet.Switch.set_forward sw (fun _e _pkt -> ());
  let e = Simnet.Engine.create () in
  feed sw e 1200 0;
  Simnet.Engine.run ~until:0.01 e;
  !level

let test_switch_pause_resume_configurable () =
  let qsc = params.Fluid.Params.qsc in
  let frame = float_of_int Simnet.Packet.data_frame_bits in
  List.iter
    (fun frac ->
      let level = resume_queue_level ~pause_resume:frac in
      Alcotest.(check bool)
        (Printf.sprintf "resume at %.1f*qsc (got %g)" frac level)
        true
        (level < frac *. qsc && level > (frac *. qsc) -. (2. *. frame)))
    [ 0.9; 0.5; 0.2 ]

let test_switch_pause_resume_validated () =
  Alcotest.(check bool) "pause_resume = 0 rejected" true
    (try
       ignore
         (Simnet.Switch.create
            {
              (Simnet.Switch.default_config params ~cpid:1) with
              Simnet.Switch.pause_resume = 0.;
            }
            ~control_out:(fun _ _ -> ()));
       false
     with Invalid_argument _ -> true)

let test_switch_egress_pause_stops_service () =
  let sw, _ = mk_switch ~cfg_mod:(fun c -> { c with Simnet.Switch.enable_pause = false }) () in
  let e = Simnet.Engine.create () in
  Simnet.Switch.set_egress_paused sw e true;
  feed sw e 10 0;
  Simnet.Engine.run ~until:0.01 e;
  checkf 1e-9 "queue held" (10. *. 12000.) (Simnet.Switch.queue_bits sw);
  Simnet.Switch.set_egress_paused sw e false;
  Simnet.Engine.run ~until:0.02 e;
  checkf 1e-9 "drained after unpause" 0. (Simnet.Switch.queue_bits sw)

let test_switch_rejects_control_frames () =
  let sw, _ = mk_switch () in
  let e = Simnet.Engine.create () in
  Alcotest.(check bool) "control frame rejected" true
    (try
       Simnet.Switch.receive sw e (Simnet.Packet.make_pause ~seq:0 ~now:0. ~on:true);
       false
     with Invalid_argument _ -> true)

(* ---------------- Source ---------------- *)

let test_source_pacing_rate () =
  let e = Simnet.Engine.create () in
  let sent = ref 0 in
  let src =
    Simnet.Source.create ~id:0 ~initial_rate:1.2e6 ~gi:1. ~gd:0.1 ~ru:1e5
      ~send:(fun _e _p -> incr sent)
      ()
  in
  Simnet.Source.start src e;
  Simnet.Engine.run ~until:1. e;
  (* 1.2e6 bit/s / 12000 bit = 100 frames/s *)
  Alcotest.(check bool) "frame count near 100" true
    (abs (!sent - 100) <= 2)

let test_source_literal_aimd () =
  let src =
    Simnet.Source.create ~id:0 ~initial_rate:1e6 ~mode:Simnet.Source.Literal
      ~gi:2. ~gd:0.5 ~ru:1e3
      ~send:(fun _e _p -> ())
      ()
  in
  Simnet.Source.handle_bcn src ~now:0. ~fb:10. ~cpid:1;
  checkf 1e-6 "additive increase" (1e6 +. (2. *. 1e3 *. 10.))
    (Simnet.Source.rate src);
  Alcotest.(check bool) "untagged after positive" false (Simnet.Source.tagged src);
  let r = Simnet.Source.rate src in
  Simnet.Source.handle_bcn src ~now:0. ~fb:(-1.) ~cpid:1;
  checkf 1e-6 "multiplicative decrease" (r *. 0.5) (Simnet.Source.rate src);
  Alcotest.(check bool) "tagged after negative" true (Simnet.Source.tagged src)

let test_source_zoh_integration () =
  let src =
    Simnet.Source.create ~id:0 ~initial_rate:1e6 ~mode:Simnet.Source.Zoh_fluid
      ~gi:1. ~gd:0.5 ~ru:1e3 ~max_rate:1e9
      ~send:(fun _e _p -> ())
      ()
  in
  let e = Simnet.Engine.create () in
  Simnet.Source.start src e;
  (* hold fb = +100: dr/dt = gi ru fb = 1e5 bit/s^2 *)
  Simnet.Source.handle_bcn src ~now:0. ~fb:100. ~cpid:1;
  Simnet.Engine.run ~until:1. e;
  (* rate should have ramped by about 1e5 *)
  Alcotest.(check bool) "ramped" true
    (Float.abs (Simnet.Source.rate src -. 1.1e6) < 0.02e6)

let test_source_pause_stops_sending () =
  let e = Simnet.Engine.create () in
  let sent = ref 0 in
  let src =
    Simnet.Source.create ~id:0 ~initial_rate:1.2e7 ~gi:1. ~gd:0.1 ~ru:1e5
      ~send:(fun _e _p -> incr sent)
      ()
  in
  Simnet.Source.start src e;
  Simnet.Engine.run ~until:0.1 e;
  let before = !sent in
  Simnet.Source.set_paused src e true;
  Simnet.Engine.run ~until:0.2 e;
  Alcotest.(check int) "no frames while paused" before !sent;
  Simnet.Source.set_paused src e false;
  Simnet.Engine.run ~until:0.3 e;
  Alcotest.(check bool) "resumed" true (!sent > before)

let test_source_rate_clamped () =
  let src =
    Simnet.Source.create ~id:0 ~initial_rate:1e6 ~mode:Simnet.Source.Literal
      ~min_rate:1e3 ~max_rate:2e6 ~gi:1. ~gd:1. ~ru:1e6
      ~send:(fun _e _p -> ())
      ()
  in
  Simnet.Source.handle_bcn src ~now:0. ~fb:1e9 ~cpid:1;
  checkf 1e-9 "max clamp" 2e6 (Simnet.Source.rate src);
  Simnet.Source.handle_bcn src ~now:0. ~fb:(-1e9) ~cpid:1;
  checkf 1e-9 "min clamp" 1e3 (Simnet.Source.rate src)

(* ---------------- Runner ---------------- *)

let test_runner_conservation () =
  let cfg = Simnet.Runner.default_config ~t_end:0.005 params in
  let r = Simnet.Runner.run cfg in
  Alcotest.(check bool) "utilization in [0,1]" true
    (r.Simnet.Runner.utilization >= 0. && r.Simnet.Runner.utilization <= 1.001);
  Alcotest.(check bool) "queue within buffer" true
    (Array.for_all
       (fun q -> q >= 0. && q <= params.Fluid.Params.buffer +. 1.)
       r.Simnet.Runner.queue.Series.vs);
  Alcotest.(check bool) "events processed" true (r.Simnet.Runner.events_processed > 0)

let test_runner_bcn_converges_queue () =
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:0.02 params) with
      Simnet.Runner.mode = Simnet.Source.Literal;
      initial_rate = 0.5 *. Fluid.Params.equilibrium_rate params;
    }
  in
  let r = Simnet.Runner.run cfg in
  Alcotest.(check int) "no drops" 0 r.Simnet.Runner.drops;
  Alcotest.(check bool) "high utilization" true (r.Simnet.Runner.utilization > 0.5);
  (* the queue eventually lives near q0 (within a broad band: the literal
     mode oscillates) *)
  let tail = Series.tail_from r.Simnet.Runner.queue 0.01 in
  let mean = Stats.mean tail.Series.vs in
  Alcotest.(check bool) "tail mean within (0, 2 q0)" true
    (mean > 0. && mean < 2. *. params.Fluid.Params.q0)

let test_runner_fairness_metric () =
  checkf 1e-12 "equal rates" 1. (Simnet.Runner.fairness [| 5.; 5.; 5. |]);
  checkf 1e-12 "one hog" (1. /. 3.) (Simnet.Runner.fairness [| 1.; 0.; 0. |])

let test_runner_no_bcn_overflows () =
  let p = Fluid.Params.default in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:0.005 p) with
      Simnet.Runner.enable_bcn = false;
      enable_pause = false;
      initial_rate = 2. *. Fluid.Params.equilibrium_rate p;
    }
  in
  let r = Simnet.Runner.run cfg in
  Alcotest.(check bool) "drops without control" true (r.Simnet.Runner.drops > 0)

let test_runner_pause_prevents_drops () =
  let p = Fluid.Params.default in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:0.005 p) with
      Simnet.Runner.enable_bcn = false;
      enable_pause = true;
      initial_rate = 2. *. Fluid.Params.equilibrium_rate p;
    }
  in
  let r = Simnet.Runner.run cfg in
  Alcotest.(check int) "no drops with PAUSE" 0 r.Simnet.Runner.drops;
  Alcotest.(check bool) "pauses occurred" true (r.Simnet.Runner.pause_on_events > 0)

(* Early exit on the overflow verdict: an uncontrolled overload run must
   reach the same [drops > 0] verdict with [stop_on_verdict] as over the
   full horizon, while actually cutting the run short; a drop-free
   controlled run must be byte-identical with the flag on, because the
   stop condition never fires. *)
let test_runner_stop_on_verdict () =
  let p = Fluid.Params.default in
  let overload =
    {
      (Simnet.Runner.default_config ~t_end:0.02 p) with
      Simnet.Runner.enable_bcn = false;
      enable_pause = false;
      initial_rate = 2. *. Fluid.Params.equilibrium_rate p;
    }
  in
  let full = Simnet.Runner.run overload in
  let early =
    Simnet.Runner.run { overload with Simnet.Runner.stop_on_verdict = true }
  in
  Alcotest.(check bool) "full horizon overflows" true
    (full.Simnet.Runner.drops > 0);
  Alcotest.(check bool) "early exit agrees on the verdict" true
    (early.Simnet.Runner.drops > 0);
  Alcotest.(check bool) "early exit is actually early" true
    (early.Simnet.Runner.events_processed
    < full.Simnet.Runner.events_processed);
  Alcotest.(check bool) "trace stops at the verdict" true
    (Array.length early.Simnet.Runner.queue.Series.ts
    < Array.length full.Simnet.Runner.queue.Series.ts);
  Alcotest.(check bool) "utilization normalized by elapsed time" true
    (early.Simnet.Runner.utilization >= 0.
    && early.Simnet.Runner.utilization <= 1.001);
  (* drop-free run: the flag must be a no-op, bit for bit *)
  let calm = Simnet.Runner.default_config ~t_end:0.005 p in
  let a = Simnet.Runner.run calm in
  let b = Simnet.Runner.run { calm with Simnet.Runner.stop_on_verdict = true } in
  Alcotest.(check int) "calm run drop-free" 0 a.Simnet.Runner.drops;
  Alcotest.(check string) "flag is a no-op without drops"
    (Marshal.to_string a [])
    (Marshal.to_string b [])

let test_runner_replicate_deterministic () =
  (* the same seeds must give byte-identical results whether the
     replicas run sequentially or fan out over a 4-lane pool *)
  let cfg = Simnet.Runner.default_config ~t_end:0.002 params in
  let seeds = [| 11; 22; 33; 44 |] in
  let serial = Simnet.Runner.replicate ~jobs:1 ~seeds cfg in
  let parallel = Simnet.Runner.replicate ~jobs:4 ~seeds cfg in
  Alcotest.(check int) "replica count" (Array.length seeds)
    (Array.length serial);
  Array.iteri
    (fun i a ->
      Alcotest.(check string)
        (Printf.sprintf "replica %d byte-identical" i)
        (Marshal.to_string a [])
        (Marshal.to_string parallel.(i) []))
    serial;
  (* different seeds under Bernoulli sampling are genuinely different
     runs: at least one pair of replicas must diverge *)
  let distinct =
    Array.exists
      (fun r ->
        Marshal.to_string r [] <> Marshal.to_string serial.(0) [])
      serial
  in
  Alcotest.(check bool) "seeds differentiate replicas" true distinct

let test_runner_run_many_matches_run () =
  let cfg = Simnet.Runner.default_config ~t_end:0.002 params in
  let cfg' = { cfg with Simnet.Runner.enable_pause = false } in
  let batch = Simnet.Runner.run_many ~jobs:2 [| cfg; cfg' |] in
  Alcotest.(check string) "slot 0 = run cfg"
    (Marshal.to_string (Simnet.Runner.run cfg) [])
    (Marshal.to_string batch.(0) []);
  Alcotest.(check string) "slot 1 = run cfg'"
    (Marshal.to_string (Simnet.Runner.run cfg') [])
    (Marshal.to_string batch.(1) [])

(* ---------------- Telemetry probes through the runner ---------------- *)

(* A congested scenario that exercises every event kind the runner can
   emit: sources start at line rate, drops forced by a small buffer. *)
let probe_cfg ~enable_pause ~buffer =
  let p =
    Fluid.Params.make ~n_flows:8 ~capacity:10e9 ~q0:(0.2 *. buffer) ~buffer
      ~gi:4. ~gd:(1. /. 128.) ~ru:8e6 ()
  in
  {
    (Simnet.Runner.default_config ~t_end:2e-3 p) with
    Simnet.Runner.enable_pause;
    initial_rate = 10e9;
  }

let run_probed cfg =
  let probe = Telemetry.Probe.create ~capacity:(1 lsl 20) () in
  let r = Simnet.Runner.run ~probe cfg in
  Alcotest.(check int) "flight recorder did not overflow" 0
    (Telemetry.Recorder.overwritten (Telemetry.Probe.recorder probe));
  (r, probe)

let test_probe_counts_match_result () =
  List.iter
    (fun (label, cfg) ->
      let r, probe = run_probed cfg in
      let rec_ = Telemetry.Probe.recorder probe in
      let count k = Telemetry.Recorder.count rec_ k in
      let check name got want =
        Alcotest.(check int) (label ^ ": " ^ name) want got
      in
      check "drop events == result.drops"
        (count Telemetry.Event.Drop)
        r.Simnet.Runner.drops;
      check "bcn+ events == result.bcn_positive"
        (count Telemetry.Event.Bcn_positive)
        r.Simnet.Runner.bcn_positive;
      check "bcn- events == result.bcn_negative"
        (count Telemetry.Event.Bcn_negative)
        r.Simnet.Runner.bcn_negative;
      check "pause-on events == result.pause_on_events"
        (count Telemetry.Event.Pause_on)
        r.Simnet.Runner.pause_on_events;
      (* every BCN message triggers exactly one reaction-point update
         (feedback is unicast to the sampled flow) *)
      check "rate updates == bcn messages"
        (count Telemetry.Event.Rate_update)
        (r.Simnet.Runner.bcn_positive + r.Simnet.Runner.bcn_negative))
    [
      ("pause", probe_cfg ~enable_pause:true ~buffer:1e6);
      ("drops", probe_cfg ~enable_pause:false ~buffer:1e6);
    ]

let test_probe_bits_conservation () =
  (* only data frames traverse the switch queue, so every dequeue is one
     delivered data frame, and enqueued - dequeued frames are still in
     the system (queued or in service) at t_end *)
  let cfg = probe_cfg ~enable_pause:false ~buffer:1e6 in
  let r, probe = run_probed cfg in
  let rec_ = Telemetry.Probe.recorder probe in
  let count k = Telemetry.Recorder.count rec_ k in
  let frame = float_of_int Simnet.Packet.data_frame_bits in
  checkf 0. "delivered == dequeues * frame_bits"
    (float_of_int (count Telemetry.Event.Dequeue) *. frame)
    r.Simnet.Runner.delivered_bits;
  checkf 0. "dropped == drops * frame_bits"
    (float_of_int (count Telemetry.Event.Drop) *. frame)
    r.Simnet.Runner.dropped_bits;
  let in_flight =
    count Telemetry.Event.Enqueue - count Telemetry.Event.Dequeue
  in
  Alcotest.(check bool) "in-flight frames fit the buffer (+1 in service)" true
    (in_flight >= 0
    && float_of_int in_flight *. frame
       <= cfg.Simnet.Runner.params.Fluid.Params.buffer +. frame)

let test_probe_does_not_perturb_run () =
  let cfg = probe_cfg ~enable_pause:true ~buffer:1e6 in
  let bare = Simnet.Runner.run cfg in
  let probed, _ = run_probed cfg in
  Alcotest.(check string) "probed run byte-identical to bare run"
    (Marshal.to_string bare [])
    (Marshal.to_string probed [])

let test_replicate_instrumented_deterministic () =
  let cfg = Simnet.Runner.default_config ~t_end:2e-3 params in
  let seeds = [| 5; 6; 7; 8 |] in
  let rs1, m1 = Simnet.Runner.replicate_instrumented ~jobs:1 ~seeds cfg in
  let rs4, m4 = Simnet.Runner.replicate_instrumented ~jobs:4 ~seeds cfg in
  Alcotest.(check string) "merged metrics byte-identical for jobs=1 vs 4"
    (Telemetry.Metrics.to_json_string m1)
    (Telemetry.Metrics.to_json_string m4);
  Array.iteri
    (fun i a ->
      Alcotest.(check string)
        (Printf.sprintf "replica %d identical" i)
        (Marshal.to_string a [])
        (Marshal.to_string rs4.(i) []))
    rs1;
  (* the merged registry really is the sum over replicas *)
  let total_events =
    Array.fold_left
      (fun acc (r : Simnet.Runner.result) -> acc + r.Simnet.Runner.events_processed)
      0 rs1
  in
  Alcotest.(check int) "runner.events_processed sums across replicas"
    total_events
    (Telemetry.Metrics.counter_value m1 "runner.events_processed");
  (* and matches the plain (uninstrumented) fan-out *)
  let plain = Simnet.Runner.replicate ~jobs:1 ~seeds cfg in
  Array.iteri
    (fun i a ->
      Alcotest.(check string)
        (Printf.sprintf "replica %d matches plain replicate" i)
        (Marshal.to_string plain.(i) [])
        (Marshal.to_string rs1.(i) []))
    rs1

(* ---------------- Topology ---------------- *)

let test_victim_scenario_contrast () =
  let p =
    Fluid.Params.make ~n_flows:10 ~capacity:10e9 ~q0:2.5e6 ~buffer:5e6 ~gi:4.
      ~gd:(1. /. 128.) ~ru:8e6 ()
  in
  let base = Simnet.Topology.default_config ~t_end:0.005 ~n_hot:10 ~victim_rate:500e6 p in
  let base = { base with Simnet.Topology.initial_hot_rate = 1.5e9 } in
  let pause_only =
    Simnet.Topology.victim_scenario
      { base with Simnet.Topology.enable_bcn = false; enable_pause = true }
  in
  let with_bcn =
    Simnet.Topology.victim_scenario
      { base with Simnet.Topology.enable_bcn = true; enable_pause = true }
  in
  Alcotest.(check bool) "victim suffers under PAUSE-only" true
    (pause_only.Simnet.Topology.victim_paused_fraction > 0.05);
  Alcotest.(check bool) "victim fine under BCN" true
    (with_bcn.Simnet.Topology.victim_paused_fraction
     < pause_only.Simnet.Topology.victim_paused_fraction /. 2.);
  Alcotest.(check bool) "BCN goodput better" true
    (with_bcn.Simnet.Topology.victim_goodput
     > pause_only.Simnet.Topology.victim_goodput)

(* ---------------- Qcn ---------------- *)

let test_qcn_quantize () =
  let q = Simnet.Qcn.quantize ~bits:6 ~fb_max:64. in
  checkf 1e-9 "positive clipped to 0" 0. (q 5.);
  checkf 1e-9 "below -fb_max clipped" (-64.) (q (-100.));
  (* step = 64/63; -1 rounds to nearest level *)
  Alcotest.(check bool) "quantized to a level" true
    (let v = q (-1.) in
     let step = 64. /. 63. in
     Float.abs (Float.rem v step) < 1e-9 || Float.abs (Float.rem v step) > step -. 1e-9)

let test_qcn_runs_and_controls () =
  let p = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
  let cfg =
    {
      (Simnet.Qcn.default_config ~t_end:0.02 p) with
      (* offer 1.5x the capacity so the congestion point must act *)
      Simnet.Qcn.initial_rate = 1.5 *. Fluid.Params.equilibrium_rate p;
    }
  in
  let r = Simnet.Qcn.run cfg in
  (* QCN has no positive messages and reacts per sampled flow, so the
     initial 1.5x surge loses a few frames before control bites (this is
     why 802.1Qau deployments pair QCN with 802.1Qbb PFC); the loss must
     stay a small fraction and the queue must come under control *)
  Alcotest.(check bool) "control messages sent" true (r.Simnet.Qcn.cn_messages > 0);
  Alcotest.(check bool) "transient loss below 5%" true
    (float_of_int r.Simnet.Qcn.drops
     < 0.05 *. (r.Simnet.Qcn.delivered_bits /. 12000.));
  let tail = Series.tail_from r.Simnet.Qcn.queue 0.012 in
  Alcotest.(check bool) "queue controlled after transient" true
    (Stats.max tail.Series.vs < p.Fluid.Params.qsc);
  Alcotest.(check bool) "utilization high" true (r.Simnet.Qcn.utilization > 0.85)

(* ---------------- Workload ---------------- *)

let run_workload w t_end =
  let e = Simnet.Engine.create () in
  let frames = ref 0 in
  Simnet.Workload.start w e ~sink:(fun _e _p -> incr frames);
  Simnet.Engine.run ~until:t_end e;
  !frames

let test_workload_cbr_rate () =
  let w = Simnet.Workload.cbr ~id:0 ~rate:1.2e6 in
  let frames = run_workload w 1. in
  (* 1.2e6 / 12000 = 100 frames/s *)
  Alcotest.(check bool) "close to 100" true (abs (frames - 100) <= 2)

let test_workload_poisson_mean () =
  let w = Simnet.Workload.poisson ~id:0 ~mean_rate:1.2e6 ~seed:3 in
  let frames = run_workload w 10. in
  (* 1000 expected; Poisson std ~ 32 *)
  Alcotest.(check bool) "within 4 sigma" true (abs (frames - 1000) < 130)

let test_workload_on_off_duty_cycle () =
  let w =
    Simnet.Workload.on_off ~id:0 ~peak_rate:1.2e6 ~mean_on:0.05 ~mean_off:0.05
      ~seed:5
  in
  let frames = run_workload w 20. in
  (* 50% duty cycle of 100 frames/s over 20 s: ~1000 *)
  Alcotest.(check bool)
    (Printf.sprintf "duty cycle ~50%% (got %d)" frames)
    true
    (frames > 600 && frames < 1400);
  Alcotest.(check (float 1e-6)) "mean offered" 0.6e6
    (Simnet.Workload.mean_offered_rate w)

let test_workload_incast_bursts () =
  let w =
    Simnet.Workload.incast ~ids:[ 0; 1; 2 ] ~burst_frames:10 ~period:0.1 ()
  in
  let frames = run_workload w 0.35 in
  (* epochs at 0, 0.1, 0.2, 0.3: 4 x 3 x 10 = 120 *)
  Alcotest.(check int) "four epochs" 120 frames

let test_workload_zero_rate_rejected () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "cbr rate 0" true
    (raises (fun () -> Simnet.Workload.cbr ~id:0 ~rate:0.));
  Alcotest.(check bool) "cbr rate < 0" true
    (raises (fun () -> Simnet.Workload.cbr ~id:0 ~rate:(-1.)));
  Alcotest.(check bool) "poisson rate 0" true
    (raises (fun () -> Simnet.Workload.poisson ~id:0 ~mean_rate:0. ~seed:1));
  Alcotest.(check bool) "on_off mean_off < 0" true
    (raises (fun () ->
         Simnet.Workload.on_off ~id:0 ~peak_rate:1e6 ~mean_on:0.1
           ~mean_off:(-0.1) ~seed:1))

let test_workload_on_off_always_on () =
  (* mean_off = 0 degenerates to CBR at the peak rate: the source never
     leaves the on phase and the frame count matches plain CBR *)
  let w =
    Simnet.Workload.on_off ~id:0 ~peak_rate:1.2e6 ~mean_on:0.05 ~mean_off:0.
      ~seed:5
  in
  let frames = run_workload w 1. in
  let cbr_frames = run_workload (Simnet.Workload.cbr ~id:0 ~rate:1.2e6) 1. in
  Alcotest.(check int) "same schedule as CBR at peak" cbr_frames frames;
  Alcotest.(check (float 1e-6)) "mean offered = peak" 1.2e6
    (Simnet.Workload.mean_offered_rate w)

(* Seeded workloads are pure functions of their seed: rebuilding the
   workload with the same seed replays the identical arrival schedule. *)
let prop_workload_seed_stable =
  QCheck.Test.make ~name:"same seed replays the same schedule" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let times w =
        let e = Simnet.Engine.create () in
        let ts = ref [] in
        Simnet.Workload.start w e ~sink:(fun e _p ->
            ts := Simnet.Engine.now e :: !ts);
        Simnet.Engine.run ~until:0.3 e;
        !ts
      in
      let poisson () =
        Simnet.Workload.poisson ~id:0 ~mean_rate:2.4e6 ~seed
      in
      let onoff () =
        Simnet.Workload.on_off ~id:0 ~peak_rate:2.4e6 ~mean_on:0.02
          ~mean_off:0.02 ~seed
      in
      times (poisson ()) = times (poisson ())
      && times (onoff ()) = times (onoff ()))

let test_workload_stop () =
  let e = Simnet.Engine.create () in
  let frames = ref 0 in
  let w = Simnet.Workload.cbr ~id:0 ~rate:1.2e6 in
  Simnet.Workload.start w e ~sink:(fun _e _p -> incr frames);
  Simnet.Engine.run ~until:0.5 e;
  Simnet.Workload.stop w;
  let before = !frames in
  Simnet.Engine.run ~until:1.5 e;
  Alcotest.(check bool) "at most one frame after stop" true
    (!frames - before <= 1)

(* ---------------- Fera ---------------- *)

let test_fera_converges_to_fair_share () =
  let p = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
  let cfg = Simnet.Fera.default_config ~t_end:0.01 p in
  let r = Simnet.Fera.run cfg in
  Alcotest.(check int) "no drops" 0 r.Simnet.Fera.drops;
  Alcotest.(check bool) "converged" true (r.Simnet.Fera.convergence_time <> None);
  Alcotest.(check bool) "fair" true
    (Simnet.Runner.fairness r.Simnet.Fera.final_rates > 0.99);
  let fair = Fluid.Params.equilibrium_rate p in
  Array.iter
    (fun rate ->
      Alcotest.(check bool) "near 0.95 fair share" true
        (Float.abs (rate -. (0.95 *. fair)) < 0.15 *. fair))
    r.Simnet.Fera.final_rates;
  Alcotest.(check bool) "utilization near target" true
    (r.Simnet.Fera.utilization > 0.85)

(* The paradigm runners' batch entry points must be order-preserving and
   jobs-independent: the fan-out over a 4-lane pool is byte-identical to
   the sequential fallback, and each slot equals a direct [run]. *)
let check_run_many name run run_many cfgs =
  let serial = run_many ~jobs:1 cfgs in
  let parallel = run_many ~jobs:4 cfgs in
  Array.iteri
    (fun i a ->
      Alcotest.(check string)
        (Printf.sprintf "%s slot %d: jobs 1 = jobs 4" name i)
        (Marshal.to_string a [])
        (Marshal.to_string parallel.(i) []))
    serial;
  Alcotest.(check string)
    (name ^ " slot 0 = direct run")
    (Marshal.to_string (run cfgs.(0)) [])
    (Marshal.to_string serial.(0) [])

let test_fera_run_many_deterministic () =
  check_run_many "fera" Simnet.Fera.run
    (fun ~jobs cfgs -> Simnet.Fera.run_many ~jobs cfgs)
    (Array.map
       (fun t_end -> Simnet.Fera.default_config ~t_end params)
       [| 2e-3; 3e-3; 4e-3 |])

let test_e2cm_run_many_deterministic () =
  check_run_many "e2cm" Simnet.E2cm.run
    (fun ~jobs cfgs -> Simnet.E2cm.run_many ~jobs cfgs)
    (Array.map
       (fun t_end -> Simnet.E2cm.default_config ~t_end params)
       [| 2e-3; 3e-3; 4e-3 |])

let test_multihop_run_many_deterministic () =
  check_run_many "multihop" Simnet.Multihop.run
    (fun ~jobs cfgs -> Simnet.Multihop.run_many ~jobs cfgs)
    (Array.map
       (fun t_end -> Simnet.Multihop.default_config ~t_end params)
       [| 2e-3; 3e-3; 4e-3 |])

let test_fera_queue_stays_small () =
  let p = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
  let r = Simnet.Fera.run (Simnet.Fera.default_config ~t_end:0.01 p) in
  (* explicit rates never let the queue grow anywhere near the buffer *)
  Alcotest.(check bool) "queue < q0" true
    (Stats.max r.Simnet.Fera.queue.Series.vs < p.Fluid.Params.q0)

(* ---------------- E2cm ---------------- *)

let test_e2cm_controls_and_outperforms_bcn_fairness () =
  let p = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
  let start = 0.3 *. Fluid.Params.equilibrium_rate p in
  let e2cm =
    Simnet.E2cm.run
      { (Simnet.E2cm.default_config ~t_end:0.02 p) with Simnet.E2cm.initial_rate = start }
  in
  Alcotest.(check int) "no drops" 0 e2cm.Simnet.E2cm.drops;
  Alcotest.(check bool) "messages flowed" true (e2cm.Simnet.E2cm.messages > 0);
  Alcotest.(check bool) "queue bounded by q0 region" true
    (Stats.max e2cm.Simnet.E2cm.queue.Series.vs < p.Fluid.Params.buffer);
  let bcn =
    Simnet.Runner.run
      {
        (Simnet.Runner.default_config ~t_end:0.02 p) with
        Simnet.Runner.mode = Simnet.Source.Literal;
        initial_rate = start;
        enable_pause = false;
      }
  in
  (* the fair-share cap tames BCN's per-sample unfairness *)
  Alcotest.(check bool) "fairer than plain BCN" true
    (Simnet.Runner.fairness e2cm.Simnet.E2cm.final_rates
     > Simnet.Runner.fairness bcn.Simnet.Runner.final_rates)

(* ---------------- Multihop ---------------- *)

let test_multihop_strict_tagging_protects () =
  let p =
    Fluid.Params.with_sampling ~pm:0.05
      (Fluid.Params.with_buffer Fluid.Params.default 15e6)
  in
  let base = Simnet.Multihop.default_config ~t_end:0.02 p in
  let strict = Simnet.Multihop.run base in
  let relaxed =
    Simnet.Multihop.run { base with Simnet.Multihop.strict_tagging = false }
  in
  Alcotest.(check int) "no drops (strict)" 0
    (strict.Simnet.Multihop.drops_a + strict.Simnet.Multihop.drops_b);
  (* strict tagging keeps the long/short goodput ratio within bounds;
     relaxing it distorts the share substantially more *)
  let dev r = Float.abs (log r.Simnet.Multihop.beatdown) in
  Alcotest.(check bool)
    (Printf.sprintf "strict %.3f closer to 1 than relaxed %.3f"
       strict.Simnet.Multihop.beatdown relaxed.Simnet.Multihop.beatdown)
    true
    (dev strict < dev relaxed);
  Alcotest.(check bool) "messages flowed" true
    (strict.Simnet.Multihop.bcn_messages > 0)

let test_multihop_validation () =
  let p = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
  let base = Simnet.Multihop.default_config p in
  Alcotest.(check bool) "rejects inverted capacities" true
    (try
       ignore (Simnet.Multihop.run { base with Simnet.Multihop.c_b = 2. *. base.Simnet.Multihop.c_a });
       false
     with Invalid_argument _ -> true)

(* ---------------- Runner histograms ---------------- *)

let test_runner_latency_histogram () =
  let cfg = Simnet.Runner.default_config ~t_end:0.005 params in
  let r = Simnet.Runner.run cfg in
  let h = r.Simnet.Runner.latency in
  Alcotest.(check bool) "latency recorded" true (Numerics.Histogram.count h > 0.);
  let p50 = Numerics.Histogram.quantile h 0.5 in
  let p99 = Numerics.Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
  (* sojourn cannot exceed buffer/C plus one service time by much *)
  Alcotest.(check bool) "p99 below bound" true
    (p99 <= (params.Fluid.Params.buffer /. params.Fluid.Params.capacity) *. 2.2)

(* ---------------- Model-based property tests ---------------- *)

let prop_fifo_conserves_bits =
  QCheck.Test.make ~name:"FIFO conserves bits over random op sequences"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 200) bool)
    (fun ops ->
      let f = Simnet.Fifo.create ~capacity_bits:60000. in
      let seq = ref 0 in
      List.iter
        (fun enq ->
          if enq then begin
            incr seq;
            ignore
              (Simnet.Fifo.enqueue f
                 (Simnet.Packet.make_data ~seq:!seq ~now:0. ~flow:0 ~rrt:None))
          end
          else ignore (Simnet.Fifo.dequeue f))
        ops;
      Float.abs
        (Simnet.Fifo.enqueued_bits f
        -. (Simnet.Fifo.dequeued_bits f +. Simnet.Fifo.occupancy_bits f))
      < 1e-9
      && Simnet.Fifo.occupancy_bits f <= 60000.)

let prop_fifo_order_preserved =
  QCheck.Test.make ~name:"FIFO pops in push order" ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let f = Simnet.Fifo.create ~capacity_bits:1e9 in
      for i = 0 to n - 1 do
        ignore
          (Simnet.Fifo.enqueue f
             (Simnet.Packet.make_data ~seq:i ~now:0. ~flow:0 ~rrt:None))
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        match Simnet.Fifo.dequeue f with
        | Some p -> if p.Simnet.Packet.seq <> i then ok := false
        | None -> ok := false
      done;
      !ok)

let prop_engine_processes_in_time_order =
  QCheck.Test.make ~name:"engine fires callbacks in nondecreasing time"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (float_range 0. 50.))
    (fun delays ->
      let e = Simnet.Engine.create () in
      let times = ref [] in
      List.iter
        (fun d ->
          Simnet.Engine.schedule e ~delay:d (fun e ->
              times := Simnet.Engine.now e :: !times))
        delays;
      Simnet.Engine.run e;
      let fired = List.rev !times in
      List.length fired = List.length delays
      && List.sort compare fired = fired)

let prop_source_rate_always_in_bounds =
  QCheck.Test.make ~name:"reaction point clamps under random feedback"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 100) (float_range (-1e7) 1e7))
    (fun fbs ->
      let src =
        Simnet.Source.create ~id:0 ~initial_rate:1e6 ~min_rate:1e3
          ~max_rate:1e9 ~mode:Simnet.Source.Literal ~gi:4. ~gd:(1. /. 128.)
          ~ru:8e6
          ~send:(fun _ _ -> ())
          ()
      in
      List.iter (fun fb -> Simnet.Source.handle_bcn src ~now:0. ~fb ~cpid:1) fbs;
      let r = Simnet.Source.rate src in
      r >= 1e3 && r <= 1e9)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "simnet"
    [
      ( "eventq",
        [
          Alcotest.test_case "ordering" `Quick test_eventq_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_eventq_interleaved;
          Alcotest.test_case "nan rejected" `Quick test_eventq_nan_rejected;
          Alcotest.test_case "clear" `Quick test_eventq_clear;
          Alcotest.test_case "no payload pinning" `Quick
            test_eventq_does_not_pin_payloads;
        ] );
      qsuite "eventq-props"
        [
          prop_eventq_sorted;
          prop_eventq_conserves;
          prop_eventq_fifo_under_ties;
          prop_eventq_matches_boxed_oracle;
          prop_calendar_matches_heap;
          prop_calendar_matches_heap_continuous;
        ];
      qsuite "model-props"
        [
          prop_fifo_conserves_bits;
          prop_fifo_order_preserved;
          prop_engine_processes_in_time_order;
          prop_source_rate_always_in_bounds;
        ];
      ( "engine",
        [
          Alcotest.test_case "order and clock" `Quick test_engine_order_and_clock;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "until boundary" `Quick test_engine_until_boundary;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        ] );
      ( "fifo",
        [ Alcotest.test_case "accounting" `Quick test_fifo_accounting ] );
      ( "packet",
        [
          Alcotest.test_case "constructors" `Quick test_packet_constructors;
          Alcotest.test_case "pool reuse" `Quick test_packet_pool_reuse;
        ] );
      ( "switch",
        [
          Alcotest.test_case "sampling rate" `Quick test_switch_sampling_rate;
          Alcotest.test_case "positive feedback" `Quick
            test_switch_positive_feedback_when_below_q0;
          Alcotest.test_case "negative feedback" `Quick
            test_switch_negative_feedback_when_congested;
          Alcotest.test_case "pause thresholds" `Quick test_switch_pause_thresholds;
          Alcotest.test_case "pause resume configurable" `Quick
            test_switch_pause_resume_configurable;
          Alcotest.test_case "pause resume validated" `Quick
            test_switch_pause_resume_validated;
          Alcotest.test_case "egress pause" `Quick
            test_switch_egress_pause_stops_service;
          Alcotest.test_case "rejects control" `Quick
            test_switch_rejects_control_frames;
        ] );
      ( "source",
        [
          Alcotest.test_case "pacing rate" `Quick test_source_pacing_rate;
          Alcotest.test_case "literal AIMD" `Quick test_source_literal_aimd;
          Alcotest.test_case "zoh integration" `Quick test_source_zoh_integration;
          Alcotest.test_case "pause" `Quick test_source_pause_stops_sending;
          Alcotest.test_case "rate clamp" `Quick test_source_rate_clamped;
        ] );
      ( "runner",
        [
          Alcotest.test_case "conservation" `Quick test_runner_conservation;
          Alcotest.test_case "BCN controls queue" `Quick
            test_runner_bcn_converges_queue;
          Alcotest.test_case "fairness metric" `Quick test_runner_fairness_metric;
          Alcotest.test_case "no control overflows" `Quick
            test_runner_no_bcn_overflows;
          Alcotest.test_case "PAUSE prevents drops" `Quick
            test_runner_pause_prevents_drops;
          Alcotest.test_case "stop on verdict" `Quick
            test_runner_stop_on_verdict;
          Alcotest.test_case "replicate deterministic" `Quick
            test_runner_replicate_deterministic;
          Alcotest.test_case "run_many matches run" `Quick
            test_runner_run_many_matches_run;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "event counts match result" `Quick
            test_probe_counts_match_result;
          Alcotest.test_case "bits conservation" `Quick
            test_probe_bits_conservation;
          Alcotest.test_case "probe does not perturb" `Quick
            test_probe_does_not_perturb_run;
          Alcotest.test_case "replicate_instrumented deterministic" `Quick
            test_replicate_instrumented_deterministic;
        ] );
      ( "topology",
        [ Alcotest.test_case "victim contrast" `Quick test_victim_scenario_contrast ] );
      ( "workload",
        [
          Alcotest.test_case "cbr rate" `Quick test_workload_cbr_rate;
          Alcotest.test_case "poisson mean" `Quick test_workload_poisson_mean;
          Alcotest.test_case "on/off duty cycle" `Quick
            test_workload_on_off_duty_cycle;
          Alcotest.test_case "incast bursts" `Quick test_workload_incast_bursts;
          Alcotest.test_case "stop" `Quick test_workload_stop;
          Alcotest.test_case "zero rate rejected" `Quick
            test_workload_zero_rate_rejected;
          Alcotest.test_case "on/off mean_off = 0" `Quick
            test_workload_on_off_always_on;
        ] );
      qsuite "workload-props" [ prop_workload_seed_stable ];
      ( "fera",
        [
          Alcotest.test_case "fair convergence" `Quick
            test_fera_converges_to_fair_share;
          Alcotest.test_case "small queue" `Quick test_fera_queue_stays_small;
          Alcotest.test_case "run_many deterministic" `Quick
            test_fera_run_many_deterministic;
        ] );
      ( "multihop",
        [
          Alcotest.test_case "strict tagging" `Slow
            test_multihop_strict_tagging_protects;
          Alcotest.test_case "validation" `Quick test_multihop_validation;
          Alcotest.test_case "run_many deterministic" `Slow
            test_multihop_run_many_deterministic;
        ] );
      ( "e2cm",
        [
          Alcotest.test_case "controls + fairness" `Quick
            test_e2cm_controls_and_outperforms_bcn_fairness;
          Alcotest.test_case "run_many deterministic" `Quick
            test_e2cm_run_many_deterministic;
        ] );
      ( "measurements",
        [
          Alcotest.test_case "latency histogram" `Quick
            test_runner_latency_histogram;
        ] );
      ( "qcn",
        [
          Alcotest.test_case "quantize" `Quick test_qcn_quantize;
          Alcotest.test_case "runs and controls" `Quick test_qcn_runs_and_controls;
        ] );
    ]
