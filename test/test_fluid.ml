(* Tests for the BCN fluid model: parameter algebra, the paper's closed
   forms (eqns (12)–(34)) cross-checked against direct numerical
   integration, the case taxonomy, the flow map and Theorem 1. *)

open Numerics

let checkf eps = Alcotest.(check (float eps))
let default = Fluid.Params.default

(* relative check for the large magnitudes of the 10G parameter set *)
let check_rel name expected got =
  let scale = Float.max 1. (Float.abs expected) in
  if Float.abs (expected -. got) > 1e-6 *. scale then
    Alcotest.failf "%s: expected %g, got %g" name expected got

(* ---------------- Params ---------------- *)

let test_params_derived () =
  check_rel "a = RuGiN" 1.6e9 (Fluid.Params.a default);
  check_rel "b = Gd" (1. /. 128.) (Fluid.Params.b default);
  check_rel "k = w/(pm C)" 2e-8 (Fluid.Params.k default);
  check_rel "fair share" 2e8 (Fluid.Params.equilibrium_rate default);
  check_rel "a threshold" 1e16 (Fluid.Params.a_threshold default);
  check_rel "b threshold" 1e6 (Fluid.Params.b_threshold default)

let test_params_validation () =
  let expect_invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "q0 >= B rejected" true
    (expect_invalid (fun () ->
         Fluid.Params.make ~n_flows:1 ~capacity:1e9 ~q0:2e6 ~buffer:1e6 ~gi:1.
           ~gd:0.1 ~ru:1e5 ()));
  Alcotest.(check bool) "pm > 1 rejected" true
    (expect_invalid (fun () ->
         Fluid.Params.make ~pm:1.5 ~n_flows:1 ~capacity:1e9 ~q0:1e5
           ~buffer:1e6 ~gi:1. ~gd:0.1 ~ru:1e5 ()));
  Alcotest.(check bool) "negative gain rejected" true
    (expect_invalid (fun () ->
         Fluid.Params.make ~n_flows:1 ~capacity:1e9 ~q0:1e5 ~buffer:1e6
           ~gi:(-1.) ~gd:0.1 ~ru:1e5 ()))

let test_params_updates () =
  let p = Fluid.Params.with_buffer default 10e6 in
  check_rel "buffer" 10e6 p.Fluid.Params.buffer;
  check_rel "qsc keeps fraction" 9e6 p.Fluid.Params.qsc;
  let p = Fluid.Params.with_gains ~gi:2. default in
  check_rel "a halves" 8e8 (Fluid.Params.a p);
  let p = Fluid.Params.with_flows default 100 in
  check_rel "a doubles" 3.2e9 (Fluid.Params.a p);
  (* capacity axis of the (N, C) plane: k = w/(pm C) and everything
     derived from it must follow the new capacity *)
  let p = Fluid.Params.with_capacity default 20e9 in
  check_rel "capacity" 20e9 p.Fluid.Params.capacity;
  check_rel "k halves" 1e-8 (Fluid.Params.k p);
  check_rel "equilibrium rate" 4e8 (Fluid.Params.equilibrium_rate p);
  check_rel "a_threshold quadruples" 4e16 (Fluid.Params.a_threshold p);
  check_rel "b_threshold doubles" 2e6 (Fluid.Params.b_threshold p)

(* ---------------- Model ---------------- *)

let test_sigma_signs () =
  (* empty queue, zero rate: sigma = q0 > 0 (rate increase) *)
  let s = Fluid.Model.sigma default ~x:(-.default.Fluid.Params.q0) ~y:0. in
  check_rel "sigma at start" default.Fluid.Params.q0 s;
  (* above reference with rising queue: decrease *)
  let s = Fluid.Model.sigma default ~x:1e6 ~y:1e9 in
  Alcotest.(check bool) "negative" true (s < 0.)

let test_coordinate_roundtrip () =
  let q = 3.3e6 and r = 1.7e8 in
  let v = Fluid.Model.to_xy default ~q ~r in
  let q', r' = Fluid.Model.of_xy default v in
  check_rel "q roundtrip" q q';
  check_rel "r roundtrip" r r'

let test_warmup_duration () =
  (* T0 = (C - N mu)/(a q0); paper's value for mu = 0 *)
  check_rel "T0" 2.5e-6 (Fluid.Model.warmup_duration default)

let test_physical_simulation_clamps () =
  let p = Fluid.Params.with_buffer default 15e6 in
  let ph = Fluid.Model.simulate_physical ~h:1e-6 ~t_end:0.01 p in
  Alcotest.(check bool) "queue never negative" true
    (Array.for_all (fun q -> q >= 0.) ph.Fluid.Model.q.Series.vs);
  Alcotest.(check bool) "queue never above B" true
    (Array.for_all (fun q -> q <= 15e6 +. 1.) ph.Fluid.Model.q.Series.vs);
  Alcotest.(check bool) "rate never negative" true
    (Array.for_all (fun r -> r >= 0.) ph.Fluid.Model.r.Series.vs);
  check_rel "no drops with big buffer" 0. ph.Fluid.Model.dropped_bits

let test_physical_warmup_matches_t0 () =
  let ph = Fluid.Model.simulate_physical ~h:1e-8 ~t_end:1e-4 default in
  let t0 = Fluid.Model.warmup_duration default in
  checkf (0.2 *. t0) "warmup end" t0 ph.Fluid.Model.warmup_end

let test_physical_overflow_accounting () =
  (* the BDP buffer overflows at the draft gains *)
  let ph = Fluid.Model.simulate_physical ~h:1e-6 ~t_end:0.01 default in
  Alcotest.(check bool) "drops recorded" true (ph.Fluid.Model.dropped_bits > 0.)

(* ---------------- Linearized ---------------- *)

let test_linearized_eigen_match_poly () =
  List.iter
    (fun region ->
      let j = Fluid.Linearized.jacobian default region in
      let p = Fluid.Linearized.char_poly default region in
      match Mat2.eigenvalues j with
      | Mat2.Complex_pair { re; im } ->
          let vr, vi = Poly.eval_complex p (re, im) in
          let scale = Float.abs p.(0) in
          Alcotest.(check bool) "eigenvalue on char poly" true
            (sqrt ((vr *. vr) +. (vi *. vi)) < 1e-6 *. scale)
      | Mat2.Real_pair (l1, l2) ->
          let scale = Float.abs p.(0) in
          Alcotest.(check bool) "l1 root" true
            (Float.abs (Poly.eval p l1) < 1e-6 *. scale);
          Alcotest.(check bool) "l2 root" true
            (Float.abs (Poly.eval p l2) < 1e-6 *. scale))
    [ Fluid.Linearized.Increase; Fluid.Linearized.Decrease ]

let test_linearized_draft_spectra () =
  (* increase: l = -16 +- 40000 i (approximately) *)
  match Fluid.Linearized.eigenvalues default Fluid.Linearized.Increase with
  | Mat2.Complex_pair { re; im } ->
      checkf 0.1 "re" (-16.) re;
      checkf 10. "im" 40000. im
  | Mat2.Real_pair _ -> Alcotest.fail "expected complex pair"

let test_linearized_damping_relation () =
  (* the paper's identity m = k n in both regions *)
  List.iter
    (fun region ->
      let m = Fluid.Linearized.damping default region in
      let n = Fluid.Linearized.stiffness default region in
      check_rel "m = k n" (Fluid.Params.k default *. n) m)
    [ Fluid.Linearized.Increase; Fluid.Linearized.Decrease ]

(* ---------------- Spiral closed forms vs integration ---------------- *)

let spiral_cases = [ (2., 25.); (0.5, 100.); (32., 1.6e9 *. 4e-16 *. 1e9) ]

let test_spiral_solution_vs_ode () =
  List.iter
    (fun (m, n) ->
      let c = Fluid.Spiral.coeffs ~m ~n in
      let f _t y = [| y.(1); (-.n *. y.(0)) -. (m *. y.(1)) |] in
      let x0 = 1.3 and y0 = -0.7 in
      let t_end = Fluid.Spiral.period c in
      let sol =
        Ode.solve_adaptive ~rtol:1e-11 ~atol:1e-14 ~t_end f ~t0:0.
          ~y0:[| x0; y0 |]
      in
      let yn = sol.Ode.ys.(Array.length sol.Ode.ys - 1) in
      let x, y = Fluid.Spiral.solution c ~x0 ~y0 t_end in
      check_rel (Printf.sprintf "x (m=%g,n=%g)" m n) yn.(0) x;
      check_rel "y" yn.(1) y)
    (List.filter (fun (m, n) -> (m *. m) -. (4. *. n) < 0.) spiral_cases)

let test_spiral_initial_conditions () =
  let c = Fluid.Spiral.coeffs ~m:2. ~n:25. in
  List.iter
    (fun (x0, y0) ->
      let x, y = Fluid.Spiral.solution c ~x0 ~y0 0. in
      checkf 1e-9 "x(0)" x0 x;
      checkf 1e-9 "y(0)" y0 y)
    [ (1., 0.); (0., 1.); (-2., 3.); (0.5, -0.5) ]

let test_spiral_extremum_is_extremum () =
  let c = Fluid.Spiral.coeffs ~m:2. ~n:25. in
  let x0 = -1. and y0 = 2. in
  let t = Fluid.Spiral.t_star c ~x0 ~y0 in
  let _, y_at = Fluid.Spiral.solution c ~x0 ~y0 t in
  checkf 1e-9 "y = 0 at extremum" 0. y_at;
  (* it must be a local max since y0 > 0 *)
  let x_star = Fluid.Spiral.extremum c ~x0 ~y0 in
  let x_before, _ = Fluid.Spiral.solution c ~x0 ~y0 (t *. 0.95) in
  let x_after, _ = Fluid.Spiral.solution c ~x0 ~y0 (t *. 1.05) in
  Alcotest.(check bool) "local max" true (x_star >= x_before && x_star >= x_after)

let test_spiral_extremum_matches_paper_formula () =
  let c = Fluid.Spiral.coeffs ~m:2. ~n:25. in
  List.iter
    (fun (x0, y0) ->
      let exact = Fluid.Spiral.extremum c ~x0 ~y0 in
      let paper = Fluid.Spiral.extremum_paper c ~x0 ~y0 in
      check_rel "paper (19)/(20) agrees" exact paper)
    [ (-1., 2.); (1., -3.); (-2., -1.); (0.5, 0.7) ]

let test_spiral_polar_consistency () =
  (* r(t) from the polar form equals sqrt((beta x)^2 + (alpha x - y)^2) *)
  let c = Fluid.Spiral.coeffs ~m:2. ~n:25. in
  let x0 = 1. and y0 = 1. in
  List.iter
    (fun t ->
      let x, y = Fluid.Spiral.solution c ~x0 ~y0 t in
      let r, _ = Fluid.Spiral.polar c ~x0 ~y0 t in
      let r_direct =
        sqrt
          (((c.Fluid.Spiral.beta *. x) ** 2.)
           +. (((c.Fluid.Spiral.alpha *. x) -. y) ** 2.))
      in
      check_rel "polar radius" r_direct r)
    [ 0.; 0.3; 1.1; 2.7 ]

let test_spiral_contraction () =
  let c = Fluid.Spiral.coeffs ~m:2. ~n:25. in
  let ratio = Fluid.Spiral.contraction_per_turn c in
  Alcotest.(check bool) "contracts" true (ratio < 1.);
  (* after one full period the state shrinks by exactly that ratio *)
  let x0 = 1. and y0 = 0.5 in
  let t = Fluid.Spiral.period c in
  let r0, _ = Fluid.Spiral.polar c ~x0 ~y0 0. in
  let r1, _ = Fluid.Spiral.polar c ~x0 ~y0 t in
  check_rel "radius ratio" ratio (r1 /. r0)

let test_spiral_crossing_time () =
  let c = Fluid.Spiral.coeffs ~m:2. ~n:25. in
  let k = 0.1 in
  match
    Fluid.Spiral.crossing_time c ~k ~dir:Fluid.Crossing.Any ~x0:(-1.) ~y0:0. ()
  with
  | Some t ->
      let x, y = Fluid.Spiral.solution c ~x0:(-1.) ~y0:0. t in
      checkf 1e-8 "on switching line" 0. (x +. (k *. y))
  | None -> Alcotest.fail "no crossing found"

let test_spiral_rejects_overdamped () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fluid.Spiral.coeffs ~m:11. ~n:25.);
       false
     with Invalid_argument _ -> true)

(* ---------------- Node closed forms vs integration ---------------- *)

let test_node_solution_vs_ode () =
  let m = 11. and n = 25. in
  let c = Fluid.Node.coeffs ~m ~n in
  let f _t y = [| y.(1); (-.n *. y.(0)) -. (m *. y.(1)) |] in
  let x0 = -1.5 and y0 = 4. in
  let t_end = 1.2 in
  let sol =
    Ode.solve_adaptive ~rtol:1e-11 ~atol:1e-14 ~t_end f ~t0:0. ~y0:[| x0; y0 |]
  in
  let yn = sol.Ode.ys.(Array.length sol.Ode.ys - 1) in
  let x, y = Fluid.Node.solution c ~x0 ~y0 t_end in
  check_rel "x" yn.(0) x;
  check_rel "y" yn.(1) y

let test_node_eigenline_invariance () =
  let c = Fluid.Node.coeffs ~m:11. ~n:25. in
  let l2 = Fluid.Node.slow_slope c in
  (* a start on the slow eigenline stays on it (eqn (25)) *)
  let x0 = 1. in
  let y0 = l2 *. x0 in
  Alcotest.(check bool) "on eigenline" true (Fluid.Node.on_eigenline c ~x0 ~y0);
  List.iter
    (fun t ->
      let x, y = Fluid.Node.solution c ~x0 ~y0 t in
      checkf 1e-9 "stays on line" 0. (y -. (l2 *. x)))
    [ 0.1; 0.5; 2. ]

let test_node_invariant_constant () =
  (* the first integral behind eqn (26) is constant along trajectories *)
  let c = Fluid.Node.coeffs ~m:11. ~n:25. in
  let x0 = -1. and y0 = 1. in
  let i0 = Fluid.Node.invariant c ~x:x0 ~y:y0 in
  List.iter
    (fun t ->
      let x, y = Fluid.Node.solution c ~x0 ~y0 t in
      checkf 1e-6 "invariant" i0 (Fluid.Node.invariant c ~x ~y))
    [ 0.05; 0.2; 0.4 ]

let test_node_extremum () =
  let c = Fluid.Node.coeffs ~m:11. ~n:25. in
  (* from (1, 2) the slow mode pulls y negative: one interior maximum *)
  let x0 = 1. and y0 = 2. in
  match (Fluid.Node.extremum_time c ~x0 ~y0, Fluid.Node.extremum c ~x0 ~y0) with
  | Some t, Some x_star ->
      let _, y_at = Fluid.Node.solution c ~x0 ~y0 t in
      checkf 1e-9 "y = 0" 0. y_at;
      (* eqn (28) in log space must agree *)
      let paper = Fluid.Node.extremum_paper c ~x0 ~y0 in
      check_rel "paper (28)" x_star paper
  | _ -> Alcotest.fail "expected an extremum"

let test_node_monotone_when_no_extremum () =
  (* starting below the slow eigenline with y < 0 and x < 0: x decreases
     monotonically toward 0; no positive-time zero of y *)
  let c = Fluid.Node.coeffs ~m:11. ~n:25. in
  match Fluid.Node.extremum_time c ~x0:1. ~y0:(Fluid.Node.slow_slope c) with
  | None -> ()
  | Some t -> Alcotest.failf "unexpected extremum at t = %g" t

(* ---------------- Critical damping ---------------- *)

let test_critical_solution_vs_ode () =
  let m = 10. and n = 25. in
  let c = Fluid.Critical.coeffs ~m ~n in
  let f _t y = [| y.(1); (-.n *. y.(0)) -. (m *. y.(1)) |] in
  let x0 = 2. and y0 = -3. in
  let t_end = 1.5 in
  let sol =
    Ode.solve_adaptive ~rtol:1e-11 ~atol:1e-14 ~t_end f ~t0:0. ~y0:[| x0; y0 |]
  in
  let yn = sol.Ode.ys.(Array.length sol.Ode.ys - 1) in
  let x, y = Fluid.Critical.solution c ~x0 ~y0 t_end in
  check_rel "x" yn.(0) x;
  check_rel "y" yn.(1) y

let test_critical_extremum_and_paper_typo () =
  let c = Fluid.Critical.coeffs ~m:10. ~n:25. in
  let x0 = -1. and y0 = 8. in
  match
    (Fluid.Critical.extremum_time c ~x0 ~y0, Fluid.Critical.extremum c ~x0 ~y0)
  with
  | Some t, Some x_star ->
      let _, y_at = Fluid.Critical.solution c ~x0 ~y0 t in
      checkf 1e-9 "y = 0 at extremum" 0. y_at;
      let x_direct, _ = Fluid.Critical.solution c ~x0 ~y0 t in
      check_rel "extremum value" x_direct x_star;
      (* eqn (34) as printed differs by the typo'd 1/l factor in the
         exponent — document that the literal formula does NOT match *)
      (match Fluid.Critical.extremum_paper c ~x0 ~y0 with
      | Some paper ->
          Alcotest.(check bool) "paper (34) typo confirmed" true
            (Float.abs (paper -. x_star) > 1e-6 *. Float.abs x_star)
      | None -> Alcotest.fail "paper formula should produce a value")
  | _ -> Alcotest.fail "expected an extremum"

let test_critical_eigenline () =
  let c = Fluid.Critical.coeffs ~m:10. ~n:25. in
  Alcotest.(check bool) "on line" true
    (Fluid.Critical.on_eigenline c ~x0:2. ~y0:(-10.));
  List.iter
    (fun t ->
      let x, y = Fluid.Critical.solution c ~x0:2. ~y0:(-10.) t in
      checkf 1e-9 "line invariant" 0. (y +. (5. *. x)))
    [ 0.2; 1. ]

(* ---------------- Cases ---------------- *)

let test_case_classification () =
  Alcotest.(check bool) "default is Case 1" true
    (Fluid.Cases.classify default = Fluid.Cases.Case1);
  Alcotest.(check bool) "case2 params" true
    (Fluid.Cases.classify Dcecc_core.Figures.case2_params = Fluid.Cases.Case2);
  Alcotest.(check bool) "case3 params" true
    (Fluid.Cases.classify Dcecc_core.Figures.case3_params = Fluid.Cases.Case3);
  Alcotest.(check bool) "case4 params" true
    (Fluid.Cases.classify Dcecc_core.Figures.case4_params = Fluid.Cases.Case4)

let test_case_thresholds_are_boundaries () =
  (* just below / above the a-threshold flips the increase-region shape *)
  let p = default in
  let k = Fluid.Params.k p in
  let a_th = 4. /. (k *. k) in
  (* choose Gi to land a slightly below/above the threshold *)
  let gi_for a = a /. (p.Fluid.Params.ru *. float_of_int p.Fluid.Params.n_flows) in
  let below = Fluid.Params.with_gains ~gi:(gi_for (0.99 *. a_th)) p in
  let above = Fluid.Params.with_gains ~gi:(gi_for (1.01 *. a_th)) p in
  Alcotest.(check bool) "below: spiral" true
    (Fluid.Cases.shape_of below Fluid.Linearized.Increase = Fluid.Cases.Spiral_shape);
  Alcotest.(check bool) "above: node" true
    (Fluid.Cases.shape_of above Fluid.Linearized.Increase = Fluid.Cases.Node_shape)

let test_eigen_slope_bound () =
  (* paper's claim below (35): node eigenvalues lie below -1/k *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "increase" true
        (Fluid.Cases.eigen_slope_bound p Fluid.Linearized.Increase);
      Alcotest.(check bool) "decrease" true
        (Fluid.Cases.eigen_slope_bound p Fluid.Linearized.Decrease))
    [
      default;
      Dcecc_core.Figures.case2_params;
      Dcecc_core.Figures.case3_params;
      Dcecc_core.Figures.case4_params;
    ]

let test_case5_erratum () =
  (* paper Case 5 claims lambda_{1,2} = -1/k at the boundary; actually
     char(-1/k) = 1/k^2 (never zero) and the repeated eigenvalue is -2/k *)
  let base = Fluid.Params.with_sampling ~w:8000. default in
  let gi_b =
    Fluid.Params.a_threshold base
    /. (base.Fluid.Params.ru *. float_of_int base.Fluid.Params.n_flows)
  in
  let p5 = Fluid.Params.with_gains ~gi:gi_b base in
  Alcotest.(check bool) "classified Case 5" true
    (Fluid.Cases.classify p5 = Fluid.Cases.Case5);
  let k = Fluid.Params.k p5 in
  let cp = Fluid.Linearized.char_poly p5 Fluid.Linearized.Increase in
  check_rel "char(-1/k) = 1/k^2" (1. /. (k *. k)) (Poly.eval cp (-1. /. k));
  Alcotest.(check bool) "char(-2/k) ~ 0" true
    (Float.abs (Poly.eval cp (-2. /. k)) < 1e-9 /. (k *. k))

(* ---------------- Flowmap ---------------- *)

let test_flowmap_segments_alternate_and_join () =
  let segs = Fluid.Flowmap.trace default (Fluid.Model.start_point default) in
  Alcotest.(check bool) "several segments" true (List.length segs >= 3);
  let rec check_chain = function
    | s1 :: (s2 :: _ as rest) ->
        Alcotest.(check bool) "regions alternate" true
          (s1.Fluid.Flowmap.region <> s2.Fluid.Flowmap.region);
        (match s1.Fluid.Flowmap.p_end with
        | Some p_end ->
            Alcotest.(check bool) "segments join" true
              (Vec2.dist p_end s2.Fluid.Flowmap.p_start
               <= 1e-6 *. (1. +. Vec2.norm p_end));
            (* crossing points lie on the switching line *)
            let g =
              p_end.Vec2.x +. (Fluid.Params.k default *. p_end.Vec2.y)
            in
            Alcotest.(check bool) "on switching line" true
              (Float.abs g <= 1e-3 *. (1. +. Vec2.norm p_end))
        | None -> Alcotest.fail "chained segment must have an end");
        check_chain rest
    | [ _ ] | [] -> ()
  in
  check_chain segs

let test_flowmap_matches_paper_numbers () =
  (* max1 evaluated by the flow map is within the Theorem-1 bound and
     close to it for the draft parameters (the proof's bound is tight) *)
  match Fluid.Flowmap.first_overshoot default with
  | Some mx ->
      let bound = Fluid.Criterion.overshoot_bound default in
      Alcotest.(check bool) "below bound" true (mx <= bound);
      Alcotest.(check bool) "within 1% of bound" true
        (mx >= 0.99 *. bound)
  | None -> Alcotest.fail "Case 1 must have an overshoot"

let test_flowmap_vs_piecewise_linear_integration () =
  (* the semi-analytic flow map must agree with direct integration of the
     piecewise-LINEAR system (9) *)
  let p = default in
  let sys = Fluid.Linearized.system p in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:0.002 sys (Fluid.Model.start_point p)
  in
  let numeric_max = Phaseplane.Trajectory.x_max tr in
  match Fluid.Flowmap.first_overshoot p with
  | Some analytic_max ->
      Alcotest.(check bool) "flow map matches linear integration" true
        (Float.abs (analytic_max -. numeric_max) <= 1e-3 *. analytic_max)
  | None -> Alcotest.fail "expected overshoot"

let test_flowmap_no_overshoot_case3 () =
  Alcotest.(check bool) "case 3 has no overshoot above 0" true
    (match Fluid.Flowmap.first_overshoot Dcecc_core.Figures.case3_params with
    | None -> true
    | Some x -> x <= 1e-3 *. Dcecc_core.Figures.case3_params.Fluid.Params.q0)

(* ---------------- Paper formula transcriptions ---------------- *)

let test_paper_case1_chain_matches_flowmap () =
  (* the printed Case-1 chain (A1i, T1i, x1d0, eqns (36)-(37)) agrees with
     the independent flow-map evaluation to float precision -- the paper's
     chained formulas are correct as printed *)
  let f = Fluid.Paper_formulas.case1 default in
  (match Fluid.Flowmap.trace default (Fluid.Model.start_point default) with
  | seg :: _ -> (
      match (seg.Fluid.Flowmap.duration, seg.Fluid.Flowmap.p_end) with
      | Some t1i, Some pe ->
          check_rel "T1i" t1i f.Fluid.Paper_formulas.t1i;
          check_rel "x1d0" pe.Vec2.x f.Fluid.Paper_formulas.x1d0;
          check_rel "y1d0" pe.Vec2.y f.Fluid.Paper_formulas.y1d0
      | _ -> Alcotest.fail "first segment must cross")
  | [] -> Alcotest.fail "no segments");
  (match Fluid.Flowmap.first_overshoot default with
  | Some mx -> check_rel "max1 = eqn (36)" mx f.Fluid.Paper_formulas.max1
  | None -> Alcotest.fail "expected overshoot");
  match Fluid.Flowmap.first_undershoot default with
  | Some mn -> check_rel "min1 = eqn (37)" mn f.Fluid.Paper_formulas.min1
  | None -> Alcotest.fail "expected undershoot"

let test_paper_case2_eqn38_matches_flowmap () =
  let c2 = Dcecc_core.Figures.case2_params in
  let paper = Fluid.Paper_formulas.max2 c2 in
  match Fluid.Flowmap.first_overshoot c2 with
  | Some mx -> check_rel "max2 = eqn (38)" mx paper
  | None -> Alcotest.fail "expected overshoot"

let test_paper_bound_chain () =
  let f = Fluid.Paper_formulas.case1 default in
  let up, low = Fluid.Paper_formulas.theorem1_bound_chain default in
  Alcotest.(check bool) "max1 below proof bound" true
    (f.Fluid.Paper_formulas.max1 <= up);
  Alcotest.(check bool) "min1 above proof bound" true
    (f.Fluid.Paper_formulas.min1 >= low)

let test_paper_case_gating () =
  Alcotest.(check bool) "case1 rejects case-2 params" true
    (try
       ignore (Fluid.Paper_formulas.case1 Dcecc_core.Figures.case2_params);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "max2 rejects case-1 params" true
    (try
       ignore (Fluid.Paper_formulas.max2 default);
       false
     with Invalid_argument _ -> true)

let prop_paper_chain_agrees_across_gains =
  QCheck.Test.make
    ~name:"eqns (36)/(37) match the flow map across random Case-1 gains"
    ~count:25
    QCheck.(pair (float_range 0.5 8.) (float_range (1. /. 512.) (1. /. 16.)))
    (fun (gi, gd) ->
      let p = Fluid.Params.with_gains ~gi ~gd default in
      QCheck.assume (Fluid.Cases.classify p = Fluid.Cases.Case1);
      let f = Fluid.Paper_formulas.case1 p in
      match (Fluid.Flowmap.first_overshoot p, Fluid.Flowmap.first_undershoot p) with
      | Some mx, Some mn ->
          Float.abs (mx -. f.Fluid.Paper_formulas.max1) < 1e-5 *. mx
          && Float.abs (mn -. f.Fluid.Paper_formulas.min1) < 1e-5 *. Float.abs mn
      | _ -> false)

(* ---------------- Criterion ---------------- *)

let test_criterion_worked_example () =
  (* the paper's 13.75 Mbit (our exact arithmetic gives 13.81) *)
  let req = Fluid.Criterion.required_buffer default in
  Alcotest.(check bool) "close to paper value" true
    (Float.abs (req -. 13.75e6) < 0.15e6);
  Alcotest.(check bool) "not satisfied at BDP" false
    (Fluid.Criterion.satisfied default);
  Alcotest.(check bool) "satisfied at 14 Mbit" true
    (Fluid.Criterion.satisfied (Fluid.Params.with_buffer default 14e6))

let test_criterion_boundary_solvers () =
  let p = default in
  (* gi_max: criterion holds just below, fails just above *)
  let gi = Fluid.Criterion.gi_max p in
  Alcotest.(check bool) "just below gi_max ok" true
    (Fluid.Criterion.satisfied (Fluid.Params.with_gains ~gi:(0.999 *. gi) p));
  Alcotest.(check bool) "just above gi_max fails" false
    (Fluid.Criterion.satisfied (Fluid.Params.with_gains ~gi:(1.001 *. gi) p));
  let gd = Fluid.Criterion.gd_min p in
  Alcotest.(check bool) "just above gd_min ok" true
    (Fluid.Criterion.satisfied (Fluid.Params.with_gains ~gd:(1.001 *. gd) p));
  Alcotest.(check bool) "just below gd_min fails" false
    (Fluid.Criterion.satisfied (Fluid.Params.with_gains ~gd:(0.999 *. gd) p));
  let q0m = Fluid.Criterion.q0_max p in
  Alcotest.(check bool) "just below q0_max ok" true
    (Fluid.Criterion.satisfied (Fluid.Params.with_q0 p (0.999 *. q0m)))

let test_criterion_n_flows_max () =
  let p = Fluid.Params.with_buffer default 14e6 in
  let nmax = Fluid.Criterion.n_flows_max p in
  Alcotest.(check bool) "nmax satisfied" true
    (nmax = 0 || Fluid.Criterion.satisfied (Fluid.Params.with_flows p nmax));
  Alcotest.(check bool) "nmax+1 fails" false
    (Fluid.Criterion.satisfied (Fluid.Params.with_flows p (nmax + 1)))

let test_criterion_sampling_independence () =
  (* Theorem 1 does not involve w or pm *)
  let p1 = Fluid.Params.with_sampling ~w:50. default in
  let p2 = Fluid.Params.with_sampling ~pm:0.5 default in
  check_rel "w-independent" (Fluid.Criterion.required_buffer default)
    (Fluid.Criterion.required_buffer p1);
  check_rel "pm-independent" (Fluid.Criterion.required_buffer default)
    (Fluid.Criterion.required_buffer p2)

let prop_criterion_monotone_in_gi =
  QCheck.Test.make ~name:"required buffer grows with Gi" ~count:100
    QCheck.(pair (float_range 0.1 8.) (float_range 1.01 4.))
    (fun (gi, factor) ->
      let p1 = Fluid.Params.with_gains ~gi default in
      let p2 = Fluid.Params.with_gains ~gi:(gi *. factor) default in
      Fluid.Criterion.required_buffer p2 > Fluid.Criterion.required_buffer p1)

let prop_criterion_scaling_sqrt_n =
  QCheck.Test.make
    ~name:"overshoot bound scales as sqrt(N) (paper Remarks)" ~count:50
    QCheck.(int_range 2 100)
    (fun n ->
      let p1 = Fluid.Params.with_flows default n in
      let p4 = Fluid.Params.with_flows default (4 * n) in
      let r =
        Fluid.Criterion.overshoot_bound p4 /. Fluid.Criterion.overshoot_bound p1
      in
      Float.abs (r -. 2.) < 1e-9)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "fluid"
    [
      ( "params",
        [
          Alcotest.test_case "derived" `Quick test_params_derived;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "updates" `Quick test_params_updates;
        ] );
      ( "model",
        [
          Alcotest.test_case "sigma signs" `Quick test_sigma_signs;
          Alcotest.test_case "coordinates" `Quick test_coordinate_roundtrip;
          Alcotest.test_case "warmup T0" `Quick test_warmup_duration;
          Alcotest.test_case "clamped simulation" `Quick
            test_physical_simulation_clamps;
          Alcotest.test_case "warmup matches T0" `Quick
            test_physical_warmup_matches_t0;
          Alcotest.test_case "overflow accounting" `Quick
            test_physical_overflow_accounting;
        ] );
      ( "linearized",
        [
          Alcotest.test_case "eigen vs char poly" `Quick
            test_linearized_eigen_match_poly;
          Alcotest.test_case "draft spectra" `Quick test_linearized_draft_spectra;
          Alcotest.test_case "m = k n" `Quick test_linearized_damping_relation;
        ] );
      ( "spiral",
        [
          Alcotest.test_case "solution vs ODE" `Quick test_spiral_solution_vs_ode;
          Alcotest.test_case "initial conditions" `Quick
            test_spiral_initial_conditions;
          Alcotest.test_case "extremum" `Quick test_spiral_extremum_is_extremum;
          Alcotest.test_case "paper (19)/(20)" `Quick
            test_spiral_extremum_matches_paper_formula;
          Alcotest.test_case "polar form" `Quick test_spiral_polar_consistency;
          Alcotest.test_case "contraction" `Quick test_spiral_contraction;
          Alcotest.test_case "crossing time" `Quick test_spiral_crossing_time;
          Alcotest.test_case "rejects overdamped" `Quick
            test_spiral_rejects_overdamped;
        ] );
      ( "node",
        [
          Alcotest.test_case "solution vs ODE" `Quick test_node_solution_vs_ode;
          Alcotest.test_case "eigenline invariance" `Quick
            test_node_eigenline_invariance;
          Alcotest.test_case "first integral" `Quick test_node_invariant_constant;
          Alcotest.test_case "extremum + paper (28)" `Quick test_node_extremum;
          Alcotest.test_case "monotone case" `Quick
            test_node_monotone_when_no_extremum;
        ] );
      ( "critical",
        [
          Alcotest.test_case "solution vs ODE" `Quick
            test_critical_solution_vs_ode;
          Alcotest.test_case "extremum + (34) typo" `Quick
            test_critical_extremum_and_paper_typo;
          Alcotest.test_case "eigenline" `Quick test_critical_eigenline;
        ] );
      ( "cases",
        [
          Alcotest.test_case "classification" `Quick test_case_classification;
          Alcotest.test_case "threshold boundary" `Quick
            test_case_thresholds_are_boundaries;
          Alcotest.test_case "eigen slope bound" `Quick test_eigen_slope_bound;
          Alcotest.test_case "case-5 erratum" `Quick test_case5_erratum;
        ] );
      ( "flowmap",
        [
          Alcotest.test_case "segments chain" `Quick
            test_flowmap_segments_alternate_and_join;
          Alcotest.test_case "paper numbers" `Quick
            test_flowmap_matches_paper_numbers;
          Alcotest.test_case "vs piecewise-linear ODE" `Quick
            test_flowmap_vs_piecewise_linear_integration;
          Alcotest.test_case "case 3 no overshoot" `Quick
            test_flowmap_no_overshoot_case3;
        ] );
      ( "paper-formulas",
        [
          Alcotest.test_case "Case-1 chain vs flow map" `Quick
            test_paper_case1_chain_matches_flowmap;
          Alcotest.test_case "eqn (38) vs flow map" `Quick
            test_paper_case2_eqn38_matches_flowmap;
          Alcotest.test_case "proof bounds" `Quick test_paper_bound_chain;
          Alcotest.test_case "case gating" `Quick test_paper_case_gating;
        ] );
      qsuite "paper-formula-props" [ prop_paper_chain_agrees_across_gains ];
      ( "criterion",
        [
          Alcotest.test_case "worked example" `Quick test_criterion_worked_example;
          Alcotest.test_case "boundary solvers" `Quick
            test_criterion_boundary_solvers;
          Alcotest.test_case "n_flows_max" `Quick test_criterion_n_flows_max;
          Alcotest.test_case "sampling independence" `Quick
            test_criterion_sampling_independence;
        ] );
      qsuite "criterion-props"
        [ prop_criterion_monotone_in_gi; prop_criterion_scaling_sqrt_n ];
    ]
