(* The batched-front contract (DESIGN.md §12): Ode.Batch advances every
   active lane bit-for-bit like the scalar in-place stepper, frozen
   lanes never move, the step allocates nothing, and the figure-level
   drivers built on the front (Portrait, Safe_region.classify_front) are
   byte-identical across pool sizes. Small and fast on purpose: this
   executable is the @batch-smoke alias.

   The system under test is the paper-shaped switched limit-cycle system
   from Dcecc_core.Figures — a [Switched_fast] carrying both the scalar
   [rhs] and the SoA [batch] sweep, so the equivalence exercised here is
   the one the figure paths rely on. *)

open Numerics

let lc_sys, _ = Dcecc_core.Figures.genuine_limit_cycle_system ()
let methods = [| Ode.Euler; Ode.Heun; Ode.Rk4 |]

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

(* Scalar reference: iterate the per-point zero-alloc stepper. *)
let scalar_trajectory ~method_ ~steps ~h (x0, y0) =
  let ws = Ode.workspace 2 in
  let rhs = Phaseplane.System.to_auto lc_sys in
  let y = [| x0; y0 |] in
  let dst = [| 0.; 0. |] in
  for _ = 1 to steps do
    Ode.step_auto_into ws method_ rhs y h dst;
    y.(0) <- dst.(0);
    y.(1) <- dst.(1)
  done;
  (y.(0), y.(1))

let batch_of_lanes lanes ~h =
  let n = List.length lanes in
  let bt = Ode.Batch.create n in
  List.iteri
    (fun i (x, y, act) ->
      bt.Ode.Batch.xs.(i) <- x;
      bt.Ode.Batch.ys.(i) <- y;
      Ode.Batch.set_active bt i act)
    lanes;
  Ode.Batch.set_h bt h;
  bt

(* Any front size, any active mask, any method: active lanes match the
   scalar stepper bit-for-bit, frozen lanes keep their initial bits. *)
let prop_batch_matches_scalar =
  QCheck.Test.make ~name:"batched step = scalar step_auto_into (bits)"
    ~count:200
    QCheck.(
      quad
        (list_of_size (Gen.int_range 1 32)
           (triple (float_range (-5.) 5.) (float_range (-5.) 5.) bool))
        (int_range 1 25) (float_range 1e-4 0.05) (int_range 0 2))
    (fun (lanes, steps, h, mi) ->
      let method_ = methods.(mi) in
      let bt = batch_of_lanes lanes ~h in
      let rhs = Phaseplane.System.batch_rhs lc_sys in
      for _ = 1 to steps do
        Ode.Batch.step bt method_ rhs
      done;
      List.for_all
        (fun (i, (x0, y0, act)) ->
          if act then begin
            let ex, ey = scalar_trajectory ~method_ ~steps ~h (x0, y0) in
            bits_equal bt.Ode.Batch.xs.(i) ex
            && bits_equal bt.Ode.Batch.ys.(i) ey
          end
          else
            bits_equal bt.Ode.Batch.xs.(i) x0
            && bits_equal bt.Ode.Batch.ys.(i) y0)
        (List.mapi (fun i l -> (i, l)) lanes))

(* The front driver reproduces the per-point driver including event
   semantics (convergence freeze, box exit, guard localization). *)
let prop_front_matches_trajectory =
  QCheck.Test.make ~name:"Front.integrate = Trajectory.integrate (bytes)"
    ~count:30
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (pair (float_range (-4.) 4.) (float_range (-4.) 4.)))
    (fun pts ->
      let h = 1e-3 and t_max = 0.5 in
      let points = List.map (fun (x, y) -> Vec2.make x y) pts in
      let front =
        Phaseplane.Front.integrate ~h ~t_max lc_sys (Array.of_list points)
      in
      let per_point =
        List.map
          (fun p ->
            Phaseplane.Trajectory.integrate
              ~solver:(Phaseplane.Trajectory.Fixed (Ode.Rk4, h))
              ~t_max lc_sys p)
          points
      in
      List.for_all2
        (fun a b -> Marshal.to_string a [] = Marshal.to_string b [])
        (Array.to_list front) per_point)

(* Once warm, stepping a front must not touch the minor heap — the whole
   point of the SoA layout. *)
let test_batch_zero_alloc () =
  let lanes = List.init 64 (fun i -> (0.1 *. float_of_int i, 1., true)) in
  let bt = batch_of_lanes lanes ~h:1e-3 in
  let rhs = Phaseplane.System.batch_rhs lc_sys in
  for _ = 1 to 10 do
    Ode.Batch.step_rk4 bt rhs
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Ode.Batch.step_rk4 bt rhs
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check (float 0.)) "minor words over 1000 steps" 0. dw

(* Figure-level byte-identity across pool sizes: the batched portrait
   and the safe-region front must not depend on how the front is
   chunked over domains. *)
let test_portrait_jobs_identity () =
  let pts =
    Phaseplane.Portrait.grid ~lo:(Vec2.make (-3.) (-3.))
      ~hi:(Vec2.make 3. 3.) ~nx:5 ~ny:5
  in
  let solver = Phaseplane.Trajectory.Fixed (Ode.Rk4, 1e-3) in
  let j1 =
    Phaseplane.Portrait.compute ~solver ~t_max:0.5 ~jobs:1 lc_sys pts
  in
  let j4 =
    Phaseplane.Portrait.compute ~solver ~t_max:0.5 ~jobs:4 lc_sys pts
  in
  Alcotest.(check string) "portrait jobs 1 = jobs 4"
    (Marshal.to_string j1 [])
    (Marshal.to_string j4 [])

let test_safe_region_jobs_identity () =
  let p = Fluid.Params.default in
  let states =
    Array.init 12 (fun i ->
        ( float_of_int (i mod 4) /. 4. *. p.Fluid.Params.buffer,
          float_of_int i /. 12. *. 2.
          *. Fluid.Params.equilibrium_rate p ))
  in
  let j1 = Fluid.Safe_region.classify_front ~jobs:1 p states in
  let j4 = Fluid.Safe_region.classify_front ~jobs:4 p states in
  Alcotest.(check string) "safe region jobs 1 = jobs 4"
    (Marshal.to_string j1 [])
    (Marshal.to_string j4 [])

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "batch"
    [
      qsuite "equivalence"
        [ prop_batch_matches_scalar; prop_front_matches_trajectory ];
      ( "allocation",
        [ Alcotest.test_case "batched step allocates zero" `Quick
            test_batch_zero_alloc ] );
      ( "determinism",
        [
          Alcotest.test_case "portrait jobs identity" `Quick
            test_portrait_jobs_identity;
          Alcotest.test_case "safe region jobs identity" `Quick
            test_safe_region_jobs_identity;
        ] );
    ]
