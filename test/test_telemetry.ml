(* Tests for the telemetry subsystem: flight recorder semantics, event
   line round-trips, metrics merge determinism, probe behaviour. *)

open Telemetry

let record_n r n =
  for k = 0 to n - 1 do
    Recorder.record r ~kind:Event.Enqueue ~t:(float_of_int k) ~a:1. ~b:2.
      ~i:k ~j:(k * 10)
  done

(* ---------------- Recorder ---------------- *)

let test_recorder_basic () =
  let r = Recorder.create ~capacity:8 in
  record_n r 3;
  Alcotest.(check int) "length" 3 (Recorder.length r);
  Alcotest.(check int) "total" 3 (Recorder.total r);
  Alcotest.(check int) "overwritten" 0 (Recorder.overwritten r);
  Alcotest.(check int) "count enqueue" 3 (Recorder.count r Event.Enqueue);
  Alcotest.(check int) "count drop" 0 (Recorder.count r Event.Drop);
  let ev = Recorder.nth r 1 in
  Alcotest.(check (float 0.)) "nth t" 1. ev.Event.t;
  Alcotest.(check int) "nth i" 1 ev.Event.i;
  Alcotest.(check int) "nth j" 10 ev.Event.j

let test_recorder_wraps_keeping_last () =
  let r = Recorder.create ~capacity:4 in
  record_n r 10;
  Alcotest.(check int) "length == capacity" 4 (Recorder.length r);
  Alcotest.(check int) "total" 10 (Recorder.total r);
  Alcotest.(check int) "overwritten" 6 (Recorder.overwritten r);
  (* the retained window is the LAST 4 events, oldest first *)
  for k = 0 to 3 do
    let ev = Recorder.nth r k in
    Alcotest.(check (float 0.))
      (Printf.sprintf "nth %d" k)
      (float_of_int (6 + k))
      ev.Event.t
  done;
  (* counts are exact despite the overwrites *)
  Alcotest.(check int) "count exact" 10 (Recorder.count r Event.Enqueue)

let test_recorder_zero_capacity_counts () =
  let r = Recorder.create ~capacity:0 in
  record_n r 100;
  Recorder.record r ~kind:Event.Drop ~t:0. ~a:0. ~b:0. ~i:0 ~j:0;
  Alcotest.(check int) "length" 0 (Recorder.length r);
  Alcotest.(check int) "total" 101 (Recorder.total r);
  Alcotest.(check int) "enqueues" 100 (Recorder.count r Event.Enqueue);
  Alcotest.(check int) "drops" 1 (Recorder.count r Event.Drop)

let test_recorder_clear () =
  let r = Recorder.create ~capacity:4 in
  record_n r 10;
  Recorder.clear r;
  Alcotest.(check int) "length" 0 (Recorder.length r);
  Alcotest.(check int) "total" 0 (Recorder.total r);
  Alcotest.(check int) "count" 0 (Recorder.count r Event.Enqueue)

let test_recorder_iter_order () =
  let r = Recorder.create ~capacity:4 in
  record_n r 7;
  let seen = ref [] in
  Recorder.iter r (fun ev -> seen := ev.Event.t :: !seen);
  Alcotest.(check (list (float 0.)))
    "oldest to newest" [ 3.; 4.; 5.; 6. ] (List.rev !seen)

(* ---------------- Event lines ---------------- *)

let all_kinds = List.init Event.n_kinds Event.of_code

let test_event_codes_and_names_roundtrip () =
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Event.name kind) true
        (Event.of_code (Event.to_code kind) = kind
        && Event.of_name (Event.name kind) = Some kind))
    all_kinds

let ev_equal (a : Event.t) (b : Event.t) =
  a.Event.kind = b.Event.kind
  && Float.equal a.Event.t b.Event.t
  && Float.equal a.Event.a b.Event.a
  && Float.equal a.Event.b b.Event.b
  && a.Event.i = b.Event.i
  && a.Event.j = b.Event.j

let prop_event_line_roundtrip =
  QCheck.Test.make ~name:"to_line |> of_line is the identity" ~count:500
    QCheck.(
      quad (int_range 0 (Event.n_kinds - 1))
        (triple (float_range (-1e9) 1e9) (float_range (-1e12) 1e12)
           (float_range (-1.) 1.))
        small_signed_int small_signed_int)
    (fun (code, (t, a, b), i, j) ->
      let ev = { Event.kind = Event.of_code code; t; a; b; i; j } in
      match Event.of_line (Event.to_line ev) with
      | Some ev' -> ev_equal ev ev'
      | None -> false)

let test_event_line_nan_and_garbage () =
  (* NaN payloads are emitted as null and come back as NaN *)
  let ev =
    { Event.kind = Event.Ode_step; t = 0.5; a = Float.nan; b = 0.; i = 0; j = 0 }
  in
  (match Event.of_line (Event.to_line ev) with
  | Some ev' -> Alcotest.(check bool) "nan survives" true (Float.is_nan ev'.Event.a)
  | None -> Alcotest.fail "nan line did not parse");
  Alcotest.(check bool) "garbage rejected" true
    (Event.of_line "not json at all" = None);
  Alcotest.(check bool) "unknown kind rejected" true
    (Event.of_line "{\"ev\": \"warp\", \"t\": 0, \"a\": 0, \"b\": 0, \"i\": 0, \"j\": 0}"
     = None)

(* ---------------- Metrics ---------------- *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.add m "c" 4;
  Metrics.set_counter m "c2" 7;
  Metrics.set_gauge m "g" 1.5;
  Metrics.add_gauge m "g" 0.25;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "c");
  Alcotest.(check int) "set_counter" 7 (Metrics.counter_value m "c2");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter_value m "absent");
  Alcotest.(check (float 0.)) "gauge" 1.75 (Metrics.gauge_value m "g");
  Alcotest.(check bool) "absent gauge NaN" true
    (Float.is_nan (Metrics.gauge_value m "absent"))

let test_metrics_histogram_geometry_guard () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" ~lo:0. ~hi:1. ~bins:10 in
  Numerics.Histogram.add h 0.5;
  (* find-or-create returns the same histogram *)
  let h' = Metrics.histogram m "lat" ~lo:0. ~hi:1. ~bins:10 in
  Alcotest.(check (float 0.)) "same histogram" 1. (Numerics.Histogram.count h');
  Alcotest.(check bool) "geometry mismatch raises" true
    (try
       ignore (Metrics.histogram m "lat" ~lo:0. ~hi:2. ~bins:10);
       false
     with Invalid_argument _ -> true);
  let foreign = Numerics.Histogram.create ~lo:0. ~hi:3. ~bins:7 in
  Alcotest.(check bool) "add_histogram mismatch raises" true
    (try
       Metrics.add_histogram m "lat" foreign;
       false
     with Invalid_argument _ -> true)

let test_metrics_add_histogram_copies () =
  let m = Metrics.create () in
  let h = Numerics.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Numerics.Histogram.add h 0.1;
  Metrics.add_histogram m "lat" h;
  (* mutating the caller's histogram afterwards must not leak in *)
  Numerics.Histogram.add h 0.9;
  let stored = Metrics.histogram m "lat" ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.(check (float 0.)) "snapshot" 1. (Numerics.Histogram.count stored)

let test_metrics_merge_and_json_determinism () =
  let build names =
    let m = Metrics.create () in
    List.iter
      (fun n ->
        Metrics.add m ("c." ^ n) 1;
        Metrics.set_gauge m ("g." ^ n) 2.;
        let h = Metrics.histogram m ("h." ^ n) ~lo:0. ~hi:1. ~bins:4 in
        Numerics.Histogram.add h 0.5)
      names;
    m
  in
  (* same content, different insertion order -> same bytes *)
  let a = build [ "x"; "y"; "z" ] and b = build [ "z"; "x"; "y" ] in
  Alcotest.(check string)
    "insertion order invisible"
    (Metrics.to_json_string a) (Metrics.to_json_string b);
  (* merging [a; b] into fresh registries in the same order -> same bytes *)
  let m1 = Metrics.create () and m2 = Metrics.create () in
  Metrics.merge_into ~into:m1 a;
  Metrics.merge_into ~into:m1 b;
  Metrics.merge_into ~into:m2 a;
  Metrics.merge_into ~into:m2 b;
  Alcotest.(check string)
    "merge deterministic"
    (Metrics.to_json_string m1) (Metrics.to_json_string m2);
  Alcotest.(check int) "counters added" 2 (Metrics.counter_value m1 "c.x");
  Alcotest.(check (float 0.)) "gauges added" 4. (Metrics.gauge_value m1 "g.x");
  let h = Metrics.histogram m1 "h.x" ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.(check (float 0.)) "histograms merged" 2.
    (Numerics.Histogram.count h)

let test_metrics_names_sorted () =
  let m = Metrics.create () in
  Metrics.incr m "zeta";
  Metrics.set_gauge m "alpha" 0.;
  ignore (Metrics.histogram m "mid" ~lo:0. ~hi:1. ~bins:2);
  Alcotest.(check (list string))
    "sorted" [ "alpha"; "mid"; "zeta" ] (Metrics.names m)

(* ---------------- Probe ---------------- *)

let test_probe_disabled_is_inert () =
  let p = Probe.disabled in
  Alcotest.(check bool) "disabled" false (Probe.enabled p);
  Probe.enqueue p ~t:0. ~q:1. ~bits:2. ~flow:0 ~seq:0;
  Probe.drop p ~t:0. ~q:1. ~bits:2. ~flow:0 ~seq:0;
  Probe.bcn p ~t:0. ~fb:(-1.) ~q:1. ~flow:0 ~seq:0;
  Probe.pause p ~t:0. ~on:true ~q:1. ~cpid:1 ~seq:0;
  Probe.rate_update p ~t:0. ~rate:1. ~fb:0.5 ~id:0 ~cpid:1;
  Probe.flush_event_counters p;
  Alcotest.(check int) "nothing recorded" 0 (Recorder.total (Probe.recorder p));
  Alcotest.(check bool) "no monitor" true (Probe.ode_monitor p = None);
  Alcotest.(check (list string)) "no metrics" [] (Metrics.names (Probe.metrics p))

let test_probe_bcn_sign_split () =
  let p = Probe.create ~capacity:16 () in
  Probe.bcn p ~t:0. ~fb:(-3.) ~q:1. ~flow:0 ~seq:0;
  Probe.bcn p ~t:1. ~fb:2. ~q:1. ~flow:0 ~seq:1;
  Probe.bcn p ~t:2. ~fb:0. ~q:1. ~flow:0 ~seq:2;
  let r = Probe.recorder p in
  Alcotest.(check int) "negative" 1 (Recorder.count r Event.Bcn_negative);
  Alcotest.(check int) "positive (fb >= 0)" 2
    (Recorder.count r Event.Bcn_positive)

let test_probe_flush_event_counters () =
  let p = Probe.create ~capacity:2 () in
  Probe.enqueue p ~t:0. ~q:1. ~bits:2. ~flow:0 ~seq:0;
  Probe.enqueue p ~t:1. ~q:1. ~bits:2. ~flow:0 ~seq:1;
  Probe.enqueue p ~t:2. ~q:1. ~bits:2. ~flow:0 ~seq:2;
  Probe.drop p ~t:3. ~q:1. ~bits:2. ~flow:0 ~seq:3;
  Probe.flush_event_counters p;
  let m = Probe.metrics p in
  Alcotest.(check int) "enqueue counter" 3
    (Metrics.counter_value m "events.enqueue");
  Alcotest.(check int) "drop counter" 1 (Metrics.counter_value m "events.drop");
  Alcotest.(check int) "total" 4 (Metrics.counter_value m "events.total");
  (* capacity 2, four events: two were overwritten, counters stay exact *)
  Alcotest.(check int) "overwritten" 2
    (Metrics.counter_value m "events.overwritten")

let test_probe_ode_monitor_counts () =
  let p = Probe.create ~capacity:0 () in
  let monitor =
    match Probe.ode_monitor p with
    | Some m -> m
    | None -> Alcotest.fail "enabled probe must yield a monitor"
  in
  let harmonic _t y = [| y.(1); -.y.(0) |] in
  let sol =
    Numerics.Ode.solve_adaptive ~rtol:1e-6 ~atol:1e-9 ~monitor
      ~t_end:(2. *. Float.pi) harmonic ~t0:0. ~y0:[| 1.; 0. |]
  in
  let r = Probe.recorder p in
  Alcotest.(check int) "ode_step events" sol.Numerics.Ode.n_steps
    (Recorder.count r Event.Ode_step);
  Alcotest.(check int) "ode_reject events" sol.Numerics.Ode.n_rejected
    (Recorder.count r Event.Ode_reject)

(* ---------------- JSONL round-trip through the recorder ---------------- *)

let test_recorder_jsonl_roundtrip () =
  let r = Recorder.create ~capacity:64 in
  Recorder.record r ~kind:Event.Enqueue ~t:1e-6 ~a:12000. ~b:12000. ~i:3 ~j:7;
  Recorder.record r ~kind:Event.Bcn_negative ~t:2e-6 ~a:(-0.125) ~b:2.5e6
    ~i:3 ~j:0;
  Recorder.record r ~kind:Event.Pause_on ~t:3e-6 ~a:1.4e7 ~i:1 ~j:1 ~b:0.;
  let path = Filename.temp_file "telemetry_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Recorder.write_jsonl r oc;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "line count" 3 (List.length lines);
      List.iteri
        (fun k line ->
          match Event.of_line line with
          | Some ev ->
              let orig = Recorder.nth r k in
              Alcotest.(check bool)
                (Printf.sprintf "line %d round-trips" k)
                true (ev_equal ev orig)
          | None -> Alcotest.fail ("unparseable: " ^ line))
        lines)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "telemetry"
    [
      ( "recorder",
        [
          Alcotest.test_case "basic" `Quick test_recorder_basic;
          Alcotest.test_case "wraps keeping last" `Quick
            test_recorder_wraps_keeping_last;
          Alcotest.test_case "zero capacity counts" `Quick
            test_recorder_zero_capacity_counts;
          Alcotest.test_case "clear" `Quick test_recorder_clear;
          Alcotest.test_case "iter order" `Quick test_recorder_iter_order;
          Alcotest.test_case "jsonl round-trip" `Quick
            test_recorder_jsonl_roundtrip;
        ] );
      ( "event",
        [
          Alcotest.test_case "codes and names" `Quick
            test_event_codes_and_names_roundtrip;
          Alcotest.test_case "nan and garbage" `Quick
            test_event_line_nan_and_garbage;
        ] );
      qsuite "event-props" [ prop_event_line_roundtrip ];
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "histogram geometry guard" `Quick
            test_metrics_histogram_geometry_guard;
          Alcotest.test_case "add_histogram copies" `Quick
            test_metrics_add_histogram_copies;
          Alcotest.test_case "merge + json determinism" `Quick
            test_metrics_merge_and_json_determinism;
          Alcotest.test_case "names sorted" `Quick test_metrics_names_sorted;
        ] );
      ( "probe",
        [
          Alcotest.test_case "disabled is inert" `Quick
            test_probe_disabled_is_inert;
          Alcotest.test_case "bcn sign split" `Quick test_probe_bcn_sign_split;
          Alcotest.test_case "flush event counters" `Quick
            test_probe_flush_event_counters;
          Alcotest.test_case "ode monitor counts" `Quick
            test_probe_ode_monitor_counts;
        ] );
    ]
