(* The domain pool: order preservation, exception propagation, the
   sequential fallback, determinism of the chunked array map, and the
   end-to-end guarantee that the parallel figure driver produces output
   identical to a serial run. Run under both DCECC_JOBS=1 and
   DCECC_JOBS=N by the @runtest-fast alias so the fallback path stays
   covered. *)

let pool_sizes = [ 1; 2; 4 ]

let with_each_size f =
  List.iter (fun s -> Parallel.Pool.with_pool ~size:s f) pool_sizes

(* ---------------- unit tests ---------------- *)

let test_map_order () =
  with_each_size (fun pool ->
      let xs = List.init 100 Fun.id in
      let expected = List.map (fun x -> (x * x) + 1) xs in
      Alcotest.(check (list int))
        (Printf.sprintf "size=%d" (Parallel.Pool.size pool))
        expected
        (Parallel.Pool.map pool (fun x -> (x * x) + 1) xs))

let test_map_empty_and_singleton () =
  with_each_size (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Parallel.Pool.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ]
        (Parallel.Pool.map pool succ [ 7 ]))

exception Boom of int

let test_exception_propagation () =
  with_each_size (fun pool ->
      let raised =
        try
          ignore
            (Parallel.Pool.map pool
               (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
               (List.init 20 (fun i -> i + 1)));
          None
        with Boom x -> Some x
      in
      (* the earliest failing input (by position) wins: 3 *)
      Alcotest.(check (option int))
        (Printf.sprintf "size=%d" (Parallel.Pool.size pool))
        (Some 3) raised)

let test_pool_survives_exception () =
  Parallel.Pool.with_pool ~size:2 (fun pool ->
      (try ignore (Parallel.Pool.map pool (fun _ -> failwith "x") [ 1 ])
       with Failure _ -> ());
      Alcotest.(check (list int)) "usable after failure" [ 2; 3 ]
        (Parallel.Pool.map pool succ [ 1; 2 ]))

let test_map_reduce () =
  with_each_size (fun pool ->
      let xs = List.init 50 (fun i -> i + 1) in
      (* non-commutative combine: string concat in input order *)
      let got =
        Parallel.Pool.map_reduce pool
          ~map:(fun x -> string_of_int x)
          ~combine:(fun acc s -> acc ^ "," ^ s)
          ~init:"" xs
      in
      let expected =
        List.fold_left (fun acc x -> acc ^ "," ^ string_of_int x) "" xs
      in
      Alcotest.(check string)
        (Printf.sprintf "size=%d" (Parallel.Pool.size pool))
        expected got)

let test_parmap_array () =
  with_each_size (fun pool ->
      List.iter
        (fun n ->
          let arr = Array.init n (fun i -> i) in
          let expected = Array.map (fun x -> (2 * x) - 7) arr in
          let got = Parallel.Pool.parmap_array pool (fun x -> (2 * x) - 7) arr in
          Alcotest.(check (array int))
            (Printf.sprintf "size=%d n=%d" (Parallel.Pool.size pool) n)
            expected got;
          (* explicit chunk sizes, including ones that don't divide n *)
          List.iter
            (fun chunk ->
              Alcotest.(check (array int))
                (Printf.sprintf "size=%d n=%d chunk=%d"
                   (Parallel.Pool.size pool) n chunk)
                expected
                (Parallel.Pool.parmap_array ~chunk pool
                   (fun x -> (2 * x) - 7)
                   arr))
            [ 1; 3; 64 ])
        [ 0; 1; 17; 100 ])

let test_default_size_env () =
  (* DCECC_JOBS governs the default; the @runtest-fast alias runs this
     binary under 1 and 4 *)
  match Sys.getenv_opt "DCECC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 ->
          Alcotest.(check int) "default_size = DCECC_JOBS" n
            (Parallel.Pool.default_size ())
      | Some _ | None -> ())
  | None ->
      Alcotest.(check bool) "default_size >= 1" true
        (Parallel.Pool.default_size () >= 1)

let test_create_validation () =
  Alcotest.(check bool) "size 0 rejected" true
    (try
       ignore (Parallel.Pool.create ~size:0 ());
       false
     with Invalid_argument _ -> true)

(* ---------------- qcheck properties ---------------- *)

let prop_map_is_list_map =
  QCheck.Test.make ~count:30 ~name:"Pool.map f = List.map f (any size)"
    QCheck.(pair (small_list small_int) (int_range 1 4))
    (fun (xs, size) ->
      Parallel.Pool.with_pool ~size (fun pool ->
          Parallel.Pool.map pool (fun x -> (3 * x) - 1) xs
          = List.map (fun x -> (3 * x) - 1) xs))

let prop_parmap_is_array_map =
  QCheck.Test.make ~count:30 ~name:"Pool.parmap_array = Array.map (any size)"
    QCheck.(pair (array_of_size Gen.(0 -- 60) small_int) (int_range 1 4))
    (fun (arr, size) ->
      Parallel.Pool.with_pool ~size (fun pool ->
          Parallel.Pool.parmap_array pool (fun x -> x * x) arr
          = Array.map (fun x -> x * x) arr))

(* ---------------- figures: parallel = serial ---------------- *)

let test_figures_parallel_equals_serial () =
  (* the end-to-end determinism guarantee behind `bench --compare`;
     jobs:2 keeps the cost bounded on small machines while still
     exercising cross-domain fan-out *)
  let serial = Dcecc_core.Figures.all ~jobs:1 () in
  let parallel = Dcecc_core.Figures.all ~jobs:2 () in
  Alcotest.(check int) "experiment count" (List.length serial)
    (List.length parallel);
  List.iter2
    (fun (id_s, text_s) (id_p, text_p) ->
      Alcotest.(check string) "id order" id_s id_p;
      Alcotest.(check string) (id_s ^ " text") text_s text_p)
    serial parallel

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "map edge cases" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "pool survives exception" `Quick
            test_pool_survives_exception;
          Alcotest.test_case "map_reduce in order" `Quick test_map_reduce;
          Alcotest.test_case "parmap_array chunking" `Quick test_parmap_array;
          Alcotest.test_case "DCECC_JOBS sizing" `Quick test_default_size_env;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          QCheck_alcotest.to_alcotest prop_map_is_list_map;
          QCheck_alcotest.to_alcotest prop_parmap_is_array_map;
        ] );
      ( "figures",
        [
          Alcotest.test_case "parallel output = serial output" `Slow
            test_figures_parallel_equals_serial;
        ] );
    ]
