(* Tests for the fault-injection layer: plan construction/validation,
   injector semantics against the dumbbell runner (transparency,
   exactness, determinism, each fault's observable effect), and the
   strong-stability resilience margins. *)

let checkf eps = Alcotest.(check (float eps))
let params = Fluid.Params.with_buffer Fluid.Params.default 15e6

let marshal (r : Simnet.Runner.result) = Marshal.to_string r []

(* A short congested dumbbell run: plenty of BCN traffic in 4 ms. *)
let base_cfg =
  {
    (Simnet.Runner.default_config ~t_end:4e-3 params) with
    Simnet.Runner.initial_rate = Fluid.Params.equilibrium_rate params;
  }

let run_with plan =
  let inj = Faultnet.Injector.create plan in
  let probe = Telemetry.Probe.create ~capacity:(1 lsl 18) () in
  let r = Simnet.Runner.run ~probe (Faultnet.Injector.attach inj base_cfg) in
  (r, inj, probe)

(* ---------------- Plan ---------------- *)

let test_plan_builders () =
  Alcotest.(check bool) "none is none" true (Faultnet.Plan.is_none Faultnet.Plan.none);
  let p =
    Faultnet.Plan.with_bcn_loss ~neg:(Faultnet.Plan.Bernoulli 0.25)
      (Faultnet.Plan.with_seed Faultnet.Plan.none 9)
  in
  Alcotest.(check bool) "loss plan not none" false (Faultnet.Plan.is_none p);
  Alcotest.(check int) "seed kept" 9 p.Faultnet.Plan.seed;
  Alcotest.(check bool) "pos side untouched" true
    (p.Faultnet.Plan.bcn_pos_loss = None);
  (* describe mentions the fault and never raises *)
  let s = Faultnet.Plan.describe p in
  Alcotest.(check bool) "described" true (String.length s > 0);
  Alcotest.(check string) "empty plan describes as none" "none"
    (Faultnet.Plan.describe Faultnet.Plan.none)

let test_plan_validation () =
  let rejects p =
    try
      ignore (Faultnet.Plan.validate p);
      false
    with Invalid_argument _ -> true
  in
  let open Faultnet.Plan in
  Alcotest.(check bool) "p > 1 rejected" true
    (rejects (with_bcn_loss ~pos:(Bernoulli 1.5) none));
  Alcotest.(check bool) "negative burst prob rejected" true
    (rejects
       (with_pause_loss none
          (Burst { p_enter = -0.1; p_exit = 0.5; p_drop = 0.5 })));
  Alcotest.(check bool) "negative delay rejected" true
    (rejects (with_delay none ~fixed:(-1e-6)));
  Alcotest.(check bool) "flap factor > 1 rejected" true
    (rejects (with_capacity none (Flap_schedule [ (1e-3, 1.5) ])));
  Alcotest.(check bool) "unordered schedule rejected" true
    (rejects
       (with_capacity none (Flap_schedule [ (2e-3, 0.5); (1e-3, 1.) ])));
  Alcotest.(check bool) "negative blackout rejected" true
    (rejects (with_blackout none ~start:1e-3 ~duration:(-1e-3)));
  (* a fully-loaded valid plan round-trips *)
  let p =
    with_blackout ~reset:true
      (with_capacity
         (with_delay ~jitter:1e-6 (with_bcn_loss ~pos:(Bernoulli 0.1) none)
            ~fixed:2e-6)
         (Flap_markov { mean_up = 1e-3; mean_down = 1e-4; factor = 0.5 }))
      ~start:1e-3 ~duration:1e-3
  in
  Alcotest.(check bool) "valid plan accepted" true (validate p == p)

let test_square_flaps_shape () =
  match
    Faultnet.Plan.square_flaps ~period:1e-3 ~duty:0.5 ~depth:0.4 ~t_end:3.5e-3
  with
  | Faultnet.Plan.Flap_schedule steps ->
      (* k = 1..3: a dip and a recovery each *)
      Alcotest.(check int) "three dips = six steps" 6 (List.length steps);
      (match steps with
      | (t0, f0) :: (t1, f1) :: _ ->
          checkf 1e-12 "first dip at period" 1e-3 t0;
          checkf 1e-12 "dip factor = 1 - depth" 0.6 f0;
          checkf 1e-12 "recovery mid-period" 1.5e-3 t1;
          checkf 1e-12 "recovery factor" 1. f1
      | _ -> Alcotest.fail "missing steps");
      ignore
        (Faultnet.Plan.validate
           (Faultnet.Plan.with_capacity Faultnet.Plan.none
              (Faultnet.Plan.Flap_schedule steps)))
  | _ -> Alcotest.fail "expected a schedule"

let prop_loss_of_severity_clamped =
  QCheck.Test.make ~name:"loss_of_severity is a valid Bernoulli" ~count:200
    QCheck.(float_range (-2.) 3.)
    (fun s ->
      match Faultnet.Plan.loss_of_severity s with
      | Faultnet.Plan.Bernoulli p -> p >= 0. && p <= 1.
      | _ -> false)

(* ---------------- Injector ---------------- *)

let test_injector_empty_plan_transparent () =
  let bare = Simnet.Runner.run base_cfg in
  let thru, inj, _ = run_with Faultnet.Plan.none in
  Alcotest.(check string) "run byte-identical through empty injector"
    (marshal bare) (marshal thru);
  Alcotest.(check int) "nothing dropped" 0 (Faultnet.Injector.dropped_total inj);
  Alcotest.(check bool) "control frames seen" true
    (Faultnet.Injector.delivered_total inj > 0)

let loss_plan =
  Faultnet.Plan.with_pause_loss
    (Faultnet.Plan.with_bcn_loss
       ~pos:(Faultnet.Plan.Bernoulli 0.3)
       ~neg:(Faultnet.Plan.Burst { p_enter = 0.2; p_exit = 0.5; p_drop = 0.9 })
       (Faultnet.Plan.with_seed Faultnet.Plan.none 42))
    (Faultnet.Plan.Bernoulli 0.5)

let test_injector_counts_exact () =
  let r, inj, probe = run_with loss_plan in
  let rec_ = Telemetry.Probe.recorder probe in
  Alcotest.(check int) "seen BCN+ = emitted BCN+"
    r.Simnet.Runner.bcn_positive
    (Faultnet.Injector.seen inj Faultnet.Plan.Bcn_positive);
  Alcotest.(check int) "seen BCN- = emitted BCN-"
    r.Simnet.Runner.bcn_negative
    (Faultnet.Injector.seen inj Faultnet.Plan.Bcn_negative);
  Alcotest.(check int) "recorded Fault_drop = dropped_total"
    (Faultnet.Injector.dropped_total inj)
    (Telemetry.Recorder.count rec_ Telemetry.Event.Fault_drop);
  Alcotest.(check bool) "losses actually occurred" true
    (Faultnet.Injector.dropped_total inj > 0)

let test_injector_deterministic () =
  let r1, _, _ = run_with loss_plan in
  let r2, _, _ = run_with loss_plan in
  Alcotest.(check string) "same plan, same run" (marshal r1) (marshal r2);
  let r3, _, _ = run_with (Faultnet.Plan.with_seed loss_plan 43) in
  Alcotest.(check bool) "different seed, different run" true
    (marshal r1 <> marshal r3)

let test_injector_delay_effect () =
  let plan =
    Faultnet.Plan.with_delay ~jitter:5e-6
      (Faultnet.Plan.with_seed Faultnet.Plan.none 3)
      ~fixed:10e-6
  in
  let _, inj, _ = run_with plan in
  Alcotest.(check bool) "frames delayed" true (Faultnet.Injector.delayed inj > 0);
  Alcotest.(check int) "no drops from a delay-only plan" 0
    (Faultnet.Injector.dropped_total inj);
  let d = Faultnet.Injector.max_added_delay inj in
  Alcotest.(check bool)
    (Printf.sprintf "max added delay in [fixed, fixed+jitter) (got %g)" d)
    true
    (d >= 10e-6 && d < 15.0000001e-6)

let test_injector_capacity_flaps () =
  let plan =
    Faultnet.Plan.with_capacity Faultnet.Plan.none
      (Faultnet.Plan.square_flaps ~period:1e-3 ~duty:0.5 ~depth:0.6
         ~t_end:4e-3)
  in
  let r, inj, probe = run_with plan in
  Alcotest.(check int) "every scheduled step applied" 6
    (Faultnet.Injector.capacity_flaps inj);
  Alcotest.(check int) "each step recorded" 6
    (Telemetry.Recorder.count
       (Telemetry.Probe.recorder probe)
       Telemetry.Event.Fault_capacity);
  let bare = Simnet.Runner.run base_cfg in
  Alcotest.(check bool) "flaps cost throughput" true
    (r.Simnet.Runner.delivered_bits < bare.Simnet.Runner.delivered_bits)

let test_injector_blackout () =
  let plan =
    Faultnet.Plan.with_blackout ~reset:true Faultnet.Plan.none ~start:1e-3
      ~duration:1e-3
  in
  let r, inj, probe = run_with plan in
  Alcotest.(check int) "off + on toggles" 2
    (Faultnet.Injector.blackout_toggles inj);
  Alcotest.(check int) "both recorded" 2
    (Telemetry.Recorder.count
       (Telemetry.Probe.recorder probe)
       Telemetry.Event.Fault_blackout);
  (* no feedback for 25% of the run: strictly fewer BCN messages *)
  let bare = Simnet.Runner.run base_cfg in
  let msgs (r : Simnet.Runner.result) =
    r.Simnet.Runner.bcn_positive + r.Simnet.Runner.bcn_negative
  in
  Alcotest.(check bool) "fewer BCN messages during blackout" true
    (msgs r < msgs bare)

(* ---------------- Resilience ---------------- *)

let tiny_scenario () =
  Faultnet.Resilience.scenario ~t_end:4e-3 ~label:"tiny" params

let test_resilience_margin_sane () =
  let sc = tiny_scenario () in
  let m =
    Faultnet.Resilience.bisect ~iters:3 ~seed:5 sc Faultnet.Resilience.Bcn_loss
  in
  Alcotest.(check string) "labels propagated" "tiny"
    m.Faultnet.Resilience.scenario;
  Alcotest.(check string) "axis name" "bcn_loss" m.Faultnet.Resilience.axis;
  Alcotest.(check bool) "margin <= ceiling" true
    (m.Faultnet.Resilience.margin <= m.Faultnet.Resilience.ceiling);
  Alcotest.(check bool) "bracket within [0, 1]" true
    (m.Faultnet.Resilience.margin >= 0. && m.Faultnet.Resilience.ceiling <= 1.);
  Alcotest.(check bool) "evaluations counted" true
    (m.Faultnet.Resilience.evaluations >= 2)

let test_resilience_sweep_jobs_independent () =
  let scenarios = [ tiny_scenario () ] in
  let axes =
    [
      Faultnet.Resilience.Bcn_loss;
      Faultnet.Resilience.Flap_depth { period = 1e-3; duty = 0.5 };
    ]
  in
  let m1 =
    Faultnet.Resilience.sweep ~jobs:1 ~iters:2 ~seed:7 scenarios axes
  in
  let m4 =
    Faultnet.Resilience.sweep ~jobs:4 ~iters:2 ~seed:7 scenarios axes
  in
  Alcotest.(check string) "CSV identical for jobs 1 vs 4"
    (Faultnet.Resilience.to_csv m1)
    (Faultnet.Resilience.to_csv m4);
  Alcotest.(check string) "JSON identical for jobs 1 vs 4"
    (Faultnet.Resilience.to_json m1)
    (Faultnet.Resilience.to_json m4);
  (* rerun with the same seed: reproducible *)
  let m1' =
    Faultnet.Resilience.sweep ~jobs:1 ~iters:2 ~seed:7 scenarios axes
  in
  Alcotest.(check string) "seed-reproducible"
    (Faultnet.Resilience.to_csv m1)
    (Faultnet.Resilience.to_csv m1')

let test_resilience_csv_shape () =
  let m =
    Faultnet.Resilience.sweep ~jobs:1 ~iters:1 ~seed:1 [ tiny_scenario () ]
      [ Faultnet.Resilience.Pause_loss ]
  in
  let csv = Faultnet.Resilience.to_csv m in
  (match String.split_on_char '\n' (String.trim csv) with
  | header :: rows ->
      Alcotest.(check string) "header"
        "scenario,axis,margin,ceiling,violation,evaluations" header;
      Alcotest.(check int) "one row per cell" (Array.length m)
        (List.length rows)
  | [] -> Alcotest.fail "empty CSV");
  Alcotest.(check bool) "JSON mentions the axis" true
    (let json = Faultnet.Resilience.to_json m in
     let needle = "\"axis\": \"pause_loss\"" in
     let n = String.length needle in
     let rec find i =
       i + n <= String.length json
       && (String.sub json i n = needle || find (i + 1))
     in
     find 0)

let test_paper_cases_shape () =
  let cases = Faultnet.Resilience.paper_cases () in
  Alcotest.(check int) "three cases" 3 (List.length cases);
  List.iter
    (fun (sc : Faultnet.Resilience.scenario) ->
      Alcotest.(check bool)
        (sc.Faultnet.Resilience.label ^ " baseline healthy")
        true
        (Faultnet.Resilience.check sc ~baseline_utilization:1.
           (Faultnet.Resilience.baseline sc)
        = None
        || (Simnet.Scenario.outcome_stats (Faultnet.Resilience.baseline sc)).(0)
             .Simnet.Scenario.drops = 0))
    cases

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "faultnet"
    [
      ( "plan",
        [
          Alcotest.test_case "builders" `Quick test_plan_builders;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "square flaps" `Quick test_square_flaps_shape;
        ] );
      qsuite "plan-props" [ prop_loss_of_severity_clamped ];
      ( "injector",
        [
          Alcotest.test_case "empty plan transparent" `Quick
            test_injector_empty_plan_transparent;
          Alcotest.test_case "counts exact" `Quick test_injector_counts_exact;
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "delay effect" `Quick test_injector_delay_effect;
          Alcotest.test_case "capacity flaps" `Quick
            test_injector_capacity_flaps;
          Alcotest.test_case "blackout" `Quick test_injector_blackout;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "margin sane" `Quick test_resilience_margin_sane;
          Alcotest.test_case "sweep jobs-independent" `Slow
            test_resilience_sweep_jobs_independent;
          Alcotest.test_case "csv shape" `Quick test_resilience_csv_shape;
          Alcotest.test_case "paper cases" `Slow test_paper_cases_shape;
        ] );
    ]
