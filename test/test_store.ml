(* Tests for the content-addressed result store and the Scenario
   canonical encoding that feeds it: SHA-256 against the FIPS vectors,
   encode/decode round-trips, key stability under field permutation and
   default elision, key sensitivity to single-field perturbation, cache
   integrity (corruption evicts and recomputes), sweep resumability and
   jobs-independence, and the resilience probe memo. *)

module Scenario = Simnet.Scenario
module Key = Store.Key
module Cache = Store.Cache
module Manifest = Store.Manifest
module Sweep = Store.Sweep

let with_store f =
  let dir = Filename.temp_dir "dcecc-store-test" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f (Cache.open_ ~dir))

(* ---------------- SHA-256 ---------------- *)

let test_sha256_vectors () =
  let check msg expect =
    Alcotest.(check string) ("sha256 of " ^ String.escaped msg) expect
      (Key.sha256_hex msg)
  in
  check ""
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  (* the 896-bit two-block FIPS vector: its padding needs a second
     block, the tail case the single-block vectors never reach *)
  check
    "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
     ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1";
  (* exercises the multi-block path: 1,000,000 'a' is the classic
     third FIPS vector *)
  check (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

(* The unrolled production compression function against the
   straightforward FIPS loop kept as an oracle, across lengths that
   cover every padding shape (empty, sub-block, one-block boundary,
   two-block tail, many blocks). *)
let test_sha256_differential () =
  let state = ref 7 in
  let byte () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    Char.chr (!state land 0xff)
  in
  List.iter
    (fun len ->
      let s = String.init len (fun _ -> byte ()) in
      Alcotest.(check string)
        (Printf.sprintf "len %d" len)
        (Key.sha256_reference s) (Key.sha256_hex s))
    [ 0; 1; 3; 31; 55; 56; 63; 64; 65; 111; 112; 119; 127; 128; 1000; 4093 ]

(* Streaming a message through [feed] in chunks — 1 MiB, irregular
   chunk sizes — must give the oneshot digest. *)
let test_sha256_streaming () =
  let n = 1 lsl 20 in
  let state = ref 99 in
  let byte () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    Char.chr (!state land 0xff)
  in
  let s = String.init n (fun _ -> byte ()) in
  let oneshot = Key.sha256_hex s in
  let ctx = Key.init () in
  let pos = ref 0 in
  let chunk = ref 1 in
  while !pos < n do
    let len = min !chunk (n - !pos) in
    Key.feed ctx (String.sub s !pos len);
    pos := !pos + len;
    (* chunk sizes sweep 1 .. ~8191, hitting sub-block, block-aligned
       and multi-block feeds in one pass *)
    chunk := 1 + ((!chunk * 2) mod 8191)
  done;
  Alcotest.(check string) "streamed = oneshot" oneshot (Key.final ctx);
  (* split-point invariance at the block boundary *)
  let ctx2 = Key.init () in
  Key.feed ctx2 (String.sub s 0 64);
  Key.feed ctx2 (String.sub s 64 (n - 64));
  Alcotest.(check string) "block-aligned split" oneshot (Key.final ctx2)

let test_key_material () =
  let k1 = Key.of_material "hello" in
  let k2 = Key.of_material "hello" in
  let k3 = Key.of_material "hellp" in
  Alcotest.(check string) "deterministic" (Key.to_hex k1) (Key.to_hex k2);
  Alcotest.(check bool) "sensitive" false (Key.to_hex k1 = Key.to_hex k3);
  Alcotest.(check bool) "of_hex round-trip" true
    (Key.of_hex (Key.to_hex k1) = Some k1);
  Alcotest.(check bool) "of_hex rejects junk" true
    (Key.of_hex "xyz" = None
    && Key.of_hex (String.make 64 'G') = None
    && Key.of_hex (String.make 63 'a') = None)

(* ---------------- Scenario encoding ---------------- *)

let params = Fluid.Params.default

let sample_scenarios () =
  let plan =
    Simnet.Fault_plan.(
      with_blackout ~reset:true
        (with_delay ~jitter:2e-6 ~reorder:true
           (with_capacity
              (with_pause_loss
                 (with_bcn_loss ~pos:(Bernoulli 0.1)
                    ~neg:(Burst { p_enter = 0.1; p_exit = 0.4; p_drop = 0.9 })
                    (with_seed none 11))
                 (Bernoulli 0.05))
              (Flap_schedule [ (1e-3, 0.5); (2e-3, 1.0) ]))
           ~fixed:1e-6)
        ~start:3e-3 ~duration:1e-3)
  in
  [
    Scenario.bcn params;
    Scenario.bcn ~t_end:4e-3 ~sampling:Scenario.Bernoulli ~mode:Simnet.Source.Literal
      ~broadcast_feedback:true ~pause_resume:0.8 params
    |> (fun s -> Scenario.with_seed s 42)
    |> (fun s -> Scenario.with_replicas s 3);
    Scenario.with_fault (Scenario.bcn ~t_end:4e-3 params) plan;
    Scenario.with_workload (Scenario.bcn params)
      [
        Scenario.Cbr { rate = 1e9 };
        Scenario.Poisson { mean_rate = 5e8; seed = 7 };
        Scenario.On_off
          { peak_rate = 2e9; mean_on = 1e-3; mean_off = 2e-3; seed = 3 };
        Scenario.Incast
          { senders = 4; burst_frames = 10; period = 1e-3; jitter = 1e-5; seed = 1 };
      ];
    Scenario.e2cm ~t_end:5e-3 params;
    Scenario.fera ~interval:2e-5 ~target_util:0.9 params;
    Scenario.multihop ~n_long:3 ~n_short:2 ~strict_tagging:false params;
    Scenario.bcn ~sampling:(Scenario.Timer 1e-5) ~enable_pause:false params;
  ]

let test_roundtrip () =
  List.iteri
    (fun i s ->
      let enc = Scenario.encode s in
      match Scenario.decode enc with
      | Error e -> Alcotest.failf "scenario %d failed to decode: %s" i e
      | Ok s' ->
          Alcotest.(check bool)
            (Printf.sprintf "scenario %d round-trips" i)
            true (Scenario.equal s s');
          Alcotest.(check string)
            (Printf.sprintf "scenario %d re-encodes identically" i)
            enc (Scenario.encode s'))
    (sample_scenarios ())

let test_describe () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "describe nonempty" true
        (String.length (Scenario.describe s) > 0))
    (sample_scenarios ())

(* Keys must not depend on JSON field order or on spelling out
   defaults: both re-keys go through decode, whose output re-encodes
   canonically. *)
let test_key_field_order_and_elision () =
  let s = List.nth (sample_scenarios ()) 1 in
  let canonical = Key.of_scenario s in
  let rekey src =
    match Scenario.decode src with
    | Ok s' -> Key.of_scenario s'
    | Error e -> Alcotest.failf "rekey decode failed: %s" e
  in
  (* hand-permuted field order, defaults elided *)
  let permuted =
    Printf.sprintf
      "{\"replicas\": 3, \"seed\": 42, \"model\": {\"pause_resume\": 0.8, \
       \"broadcast_feedback\": true, \"mode\": \"literal\", \"sampling\": \
       {\"kind\": \"bernoulli\"}, \"kind\": \"bcn\"}, \"t_end\": 0.004, \
       \"params\": %s, \"v\": 1}"
      (Scenario.encode_params params)
  in
  Alcotest.(check string) "permuted+elided encoding keys identically"
    (Key.to_hex canonical)
    (Key.to_hex (rekey permuted));
  (* fully explicit canonical form keys identically too *)
  Alcotest.(check string) "canonical encoding keys identically"
    (Key.to_hex canonical)
    (Key.to_hex (rekey (Scenario.encode s)))

let test_key_sensitivity () =
  let base = Scenario.bcn ~t_end:4e-3 params in
  let k = Key.to_hex (Key.of_scenario base) in
  let differs name s' =
    Alcotest.(check bool) (name ^ " changes the key") false
      (k = Key.to_hex (Key.of_scenario s'))
  in
  differs "t_end" (Scenario.bcn ~t_end:5e-3 params);
  differs "sample_dt" { base with Scenario.sample_dt = 2e-5 };
  differs "control_delay" { base with Scenario.control_delay = 2e-6 };
  differs "initial_rate" { base with Scenario.initial_rate = Some 1e9 };
  differs "params"
    (Scenario.bcn ~t_end:4e-3 (Fluid.Params.with_buffer params 15e6));
  differs "model knob"
    (Scenario.bcn ~t_end:4e-3 ~enable_pause:false params);
  differs "workload"
    (Scenario.with_workload base [ Scenario.Cbr { rate = 1e9 } ]);
  differs "fault"
    (Scenario.with_fault base
       Simnet.Fault_plan.(with_bcn_loss ~pos:(Bernoulli 0.1) none));
  differs "model family" (Scenario.e2cm ~t_end:4e-3 params);
  (* the no-op fault plan normalises away: key unchanged *)
  Alcotest.(check string) "empty plan does not perturb the key" k
    (Key.to_hex (Key.of_scenario (Scenario.with_fault base Simnet.Fault_plan.none)))

let test_decode_rejects () =
  let rejects name src =
    match Scenario.decode src with
    | Ok _ -> Alcotest.failf "%s unexpectedly decoded" name
    | Error _ -> ()
  in
  rejects "garbage" "not json";
  rejects "unknown top field"
    "{\"v\": 1, \"model\": {\"kind\": \"bcn\"}, \"params\": {\"n_flows\": 1, \
     \"capacity\": 1e9, \"q0\": 1e5, \"buffer\": 5e6, \"gi\": 1.0, \"gd\": \
     4.0, \"ru\": 1e6}, \"bogus\": 1}";
  rejects "unknown model kind"
    "{\"v\": 1, \"model\": {\"kind\": \"dctcp\"}, \"params\": {\"n_flows\": \
     1, \"capacity\": 1e9, \"q0\": 1e5, \"buffer\": 5e6, \"gi\": 1.0, \
     \"gd\": 4.0, \"ru\": 1e6}}";
  rejects "bad version"
    "{\"v\": 99, \"model\": {\"kind\": \"bcn\"}, \"params\": {\"n_flows\": \
     1, \"capacity\": 1e9, \"q0\": 1e5, \"buffer\": 5e6, \"gi\": 1.0, \
     \"gd\": 4.0, \"ru\": 1e6}}";
  rejects "missing params" "{\"v\": 1, \"model\": {\"kind\": \"bcn\"}}";
  rejects "invalid semantics (t_end < 0)"
    "{\"v\": 1, \"t_end\": -1.0, \"model\": {\"kind\": \"bcn\"}, \"params\": \
     {\"n_flows\": 1, \"capacity\": 1e9, \"q0\": 1e5, \"buffer\": 5e6, \
     \"gi\": 1.0, \"gd\": 4.0, \"ru\": 1e6}}"

(* qcheck: random valid BCN scenarios round-trip through the encoding *)
let scenario_gen =
  QCheck.Gen.(
    let* t_end = float_range 1e-3 1e-2 in
    let* seed = int_range 0 1000 in
    let* bern = bool in
    let* replicas = if bern then int_range 1 4 else return 1 in
    let* enable_pause = bool in
    let* broadcast = bool in
    let* workload =
      oneof
        [
          return [];
          return [ Scenario.Cbr { rate = 1e8 } ];
          (let* wseed = int_range 0 99 in
           return [ Scenario.Poisson { mean_rate = 1e8; seed = wseed } ]);
        ]
    in
    let* fault =
      oneof
        [
          return None;
          (let* p = float_range 0.01 0.5 in
           return
             (Some Simnet.Fault_plan.(with_bcn_loss ~pos:(Bernoulli p) none)));
        ]
    in
    let s =
      Scenario.bcn ~t_end
        ~sampling:(if bern then Scenario.Bernoulli else Scenario.Deterministic)
        ~enable_pause ~broadcast_feedback:broadcast params
    in
    let s = Scenario.with_seed s seed in
    let s = Scenario.with_replicas s replicas in
    let s = Scenario.with_workload s workload in
    let s = match fault with Some p -> Scenario.with_fault s p | None -> s in
    return s)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"decode (encode s) = Ok s" ~count:200
    (QCheck.make scenario_gen ~print:Scenario.encode)
    (fun s ->
      match Scenario.decode (Scenario.encode s) with
      | Ok s' -> Scenario.equal s s' && Scenario.encode s' = Scenario.encode s
      | Error _ -> false)

(* ---------------- Cache ---------------- *)

let test_cache_basics () =
  with_store (fun c ->
      let k = Key.of_material "cache-basics" in
      Alcotest.(check bool) "miss on empty" true (Cache.find c k = None);
      Cache.put c k "payload bytes";
      Alcotest.(check bool) "mem after put" true (Cache.mem c k);
      Alcotest.(check (option string)) "hit returns payload"
        (Some "payload bytes") (Cache.find c k);
      let s = Cache.stats c in
      Alcotest.(check int) "one hit" 1 s.Cache.hits;
      Alcotest.(check int) "one miss" 1 s.Cache.misses;
      Alcotest.(check int) "one put" 1 s.Cache.puts;
      Alcotest.(check int) "one entry on disk" 1 (Cache.entries c);
      (* reopening sees the same entry *)
      let c2 = Cache.open_ ~dir:(Cache.root c) in
      Alcotest.(check (option string)) "persistent across open"
        (Some "payload bytes") (Cache.find c2 k))

let test_cache_refuses_foreign_dir () =
  let dir = Filename.temp_dir "dcecc-notastore" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let oc = open_out (Filename.concat dir "precious.txt") in
      output_string oc "do not touch";
      close_out oc;
      Alcotest.check_raises "refuses non-store directory"
        (Failure
           (Printf.sprintf
              "Store.Cache.open_: %s exists, is not empty and has no store \
               format stamp"
              dir))
        (fun () -> ignore (Cache.open_ ~dir)))

let corrupt_entry root key =
  let hex = Key.to_hex key in
  let path =
    Filename.concat
      (Filename.concat (Filename.concat root "objects") (String.sub hex 0 2))
      hex
  in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let mangled = Bytes.of_string raw in
  let last = Bytes.length mangled - 1 in
  Bytes.set mangled last
    (Char.chr (Char.code (Bytes.get mangled last) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc mangled;
  close_out oc;
  path

let test_cache_corruption_evicts () =
  with_store (fun c ->
      let k = Key.of_material "corruptible" in
      let computed = ref 0 in
      let f () =
        incr computed;
        "the result"
      in
      Alcotest.(check string) "cold memo computes" "the result"
        (Cache.memo c k f);
      Alcotest.(check string) "warm memo cached" "the result"
        (Cache.memo c k f);
      Alcotest.(check int) "computed once" 1 !computed;
      let path = corrupt_entry (Cache.root c) k in
      Alcotest.(check string) "corrupt entry recomputes" "the result"
        (Cache.memo c k f);
      Alcotest.(check int) "recomputed after corruption" 2 !computed;
      Alcotest.(check int) "eviction counted" 1 (Cache.stats c).Cache.evictions;
      Alcotest.(check bool) "entry rewritten" true (Sys.file_exists path);
      Alcotest.(check string) "healthy again" "the result" (Cache.memo c k f);
      Alcotest.(check int) "no recompute after heal" 2 !computed)

let test_manifest () =
  with_store (fun c ->
      let points =
        Array.init 5 (fun i -> Key.of_material (Printf.sprintf "point-%d" i))
      in
      let m = Manifest.create ~points in
      Manifest.save c m;
      (match Manifest.load c m.Manifest.sweep_key with
      | None -> Alcotest.fail "manifest did not load"
      | Some m' ->
          Alcotest.(check int) "point count survives" 5
            (Array.length m'.Manifest.points);
          Alcotest.(check string) "points survive in order"
            (String.concat "," (Array.to_list (Array.map Key.to_hex points)))
            (String.concat ","
               (Array.to_list (Array.map Key.to_hex m'.Manifest.points))));
      Alcotest.(check int) "no progress yet" 0 (Manifest.progress c m);
      Cache.put c points.(1) "x";
      Cache.put c points.(3) "y";
      Alcotest.(check int) "progress counts present points" 2
        (Manifest.progress c m);
      Alcotest.(check int) "listed" 1 (List.length (Manifest.list c)))

(* ---------------- Sweeps through the store ---------------- *)

let sweep_scenarios () =
  Array.of_list
    (List.map
       (fun t_end -> Scenario.bcn ~t_end params)
       [ 1e-3; 1.5e-3; 2e-3; 2.5e-3 ])

let marshal_outcomes (o : Sweep.outcome array) = Marshal.to_string o []

let test_sweep_cold_then_warm () =
  with_store (fun c ->
      let scenarios = sweep_scenarios () in
      let cold = Sweep.sweep ~cache:c ~jobs:1 scenarios in
      let s1 = Cache.stats c in
      Alcotest.(check int) "cold: all points computed"
        (Array.length scenarios) s1.Cache.misses;
      Cache.reset_stats c;
      let warm = Sweep.sweep ~cache:c ~jobs:1 scenarios in
      let s2 = Cache.stats c in
      Alcotest.(check int) "warm: zero simulations (no misses)" 0
        s2.Cache.misses;
      Alcotest.(check int) "warm: zero writes" 0 s2.Cache.puts;
      Alcotest.(check int) "warm: all points served from store"
        (Array.length scenarios) s2.Cache.hits;
      Alcotest.(check string) "warm byte-identical to cold"
        (marshal_outcomes cold) (marshal_outcomes warm))

let test_sweep_resume_after_crash () =
  with_store (fun c ->
      let scenarios = sweep_scenarios () in
      (* simulate a sweep killed after two points: run only a prefix *)
      let prefix = Array.sub scenarios 0 2 in
      ignore (Sweep.sweep ~cache:c ~jobs:1 prefix);
      (* the full sweep's manifest knows what is already done *)
      let m =
        Manifest.create ~points:(Array.map Key.of_scenario scenarios)
      in
      Alcotest.(check int) "manifest sees the partial progress" 2
        (Manifest.progress c m);
      Cache.reset_stats c;
      let resumed = Sweep.sweep ~cache:c ~jobs:1 scenarios in
      let s = Cache.stats c in
      Alcotest.(check int) "resume recomputes only the missing points" 2
        s.Cache.misses;
      Alcotest.(check int) "resume reuses the completed points" 2
        s.Cache.hits;
      Alcotest.(check int) "manifest complete after resume"
        (Array.length scenarios) (Manifest.progress c m);
      (* and the result equals a from-scratch cold sweep elsewhere *)
      with_store (fun c2 ->
          let cold = Sweep.sweep ~cache:c2 ~jobs:1 scenarios in
          Alcotest.(check string) "resumed = cold" (marshal_outcomes cold)
            (marshal_outcomes resumed)))

let test_sweep_jobs_independent () =
  with_store (fun c ->
      let scenarios = sweep_scenarios () in
      let r1 = Sweep.sweep ~cache:c ~jobs:1 scenarios in
      with_store (fun c4 ->
          let r4 = Sweep.sweep ~cache:c4 ~jobs:4 scenarios in
          Alcotest.(check string) "jobs=1 and jobs=4 byte-identical"
            (marshal_outcomes r1) (marshal_outcomes r4));
      (* warm read at a different jobs count is also identical *)
      let r4' = Sweep.sweep ~cache:c ~jobs:4 scenarios in
      Alcotest.(check string) "warm at jobs=4 = cold at jobs=1"
        (marshal_outcomes r1) (marshal_outcomes r4'))

let test_memo_run_models () =
  with_store (fun c ->
      List.iter
        (fun s ->
          let cold = Sweep.memo_run ~cache:c s in
          let warm = Sweep.memo_run ~cache:c s in
          Alcotest.(check string) "memo_run warm = cold"
            (Marshal.to_string cold [])
            (Marshal.to_string warm []))
        [
          Scenario.e2cm ~t_end:2e-3 params;
          Scenario.fera ~t_end:2e-3 params;
          Scenario.multihop ~t_end:2e-3 ~n_long:2 ~n_short:2 params;
          Scenario.rcp ~t_end:2e-3 params;
        ])

(* faulted, multi-replica scenario: exec wires injectors per replica.
   The run must actually congest (start at the equilibrium rate) or the
   switch never samples and every replica degenerates to the same
   trace. *)
let test_exec_faulted_replicas () =
  let congested = Fluid.Params.with_buffer params 15e6 in
  let s =
    Scenario.bcn ~t_end:2e-3 ~sampling:Scenario.Bernoulli
      ~initial_rate:(Fluid.Params.equilibrium_rate congested) congested
    |> (fun s -> Scenario.with_seed s 3)
    |> (fun s -> Scenario.with_replicas s 2)
    |> fun s ->
    Scenario.with_fault s
      Simnet.Fault_plan.(with_bcn_loss ~pos:(Bernoulli 0.3) (with_seed none 5))
  in
  match Sweep.exec s with
  | Sweep.Bcn_results rs ->
      Alcotest.(check int) "one result per replica" 2 (Array.length rs);
      Alcotest.(check bool) "replicas decorrelated" false
        (Marshal.to_string rs.(0) [] = Marshal.to_string rs.(1) []);
      (* deterministic: a second exec is byte-identical *)
      (match Sweep.exec s with
      | Sweep.Bcn_results rs' ->
          Alcotest.(check string) "exec deterministic"
            (Marshal.to_string rs [])
            (Marshal.to_string rs' [])
      | _ -> Alcotest.fail "model tag changed")
  | _ -> Alcotest.fail "expected Bcn_results"

(* ---------------- Resilience memo ---------------- *)

let test_resilience_memo () =
  with_store (fun c ->
      let sc =
        Faultnet.Resilience.scenario ~t_end:2e-3 ~label:"memo"
          (Fluid.Params.with_buffer Fluid.Params.default 15e6)
      in
      let memo = Sweep.resilience_memo c in
      let cold =
        Faultnet.Resilience.bisect ~iters:2 ~memo ~seed:5 sc
          Faultnet.Resilience.Bcn_loss
      in
      Cache.reset_stats c;
      let warm =
        Faultnet.Resilience.bisect ~iters:2 ~memo ~seed:5 sc
          Faultnet.Resilience.Bcn_loss
      in
      Alcotest.(check int) "warm bisect: zero simulations" 0
        (Cache.stats c).Cache.misses;
      Alcotest.(check bool) "warm bisect: probes served from store" true
        ((Cache.stats c).Cache.hits > 0);
      Alcotest.(check string) "warm margin byte-identical"
        (Marshal.to_string cold [])
        (Marshal.to_string warm []);
      (* unmemoized bisect agrees: the memo changes cost, not answers *)
      let plain =
        Faultnet.Resilience.bisect ~iters:2 ~seed:5 sc
          Faultnet.Resilience.Bcn_loss
      in
      Alcotest.(check string) "memoized = unmemoized"
        (Marshal.to_string plain [])
        (Marshal.to_string cold []))

(* ---------------- Object index ---------------- *)

module Index = Store.Index
module Store_gc = Store.Gc
module Fsck = Store.Fsck

let entry_path root key =
  let hex = Key.to_hex key in
  Filename.concat
    (Filename.concat (Filename.concat root "objects") (String.sub hex 0 2))
    hex

let test_index_lockstep () =
  with_store (fun c ->
      let k1 = Key.of_material "idx-1" and k2 = Key.of_material "idx-2" in
      Cache.put c k1 "payload one";
      Cache.put c k2 "payload two!";
      Alcotest.(check int) "objects counted" 2 (Cache.objects c);
      (* entry size = 72-byte header + payload *)
      Alcotest.(check int) "bytes counted"
        (72 + 11 + (72 + 12))
        (Cache.bytes c);
      Alcotest.(check bool) "membership by hex" true
        (Index.mem (Cache.index c) (Key.to_hex k1));
      Alcotest.(check (option int)) "per-entry size" (Some (72 + 11))
        (Index.size_of (Cache.index c) (Key.to_hex k1));
      Cache.evict c k1;
      Alcotest.(check int) "evict drops the record" 1 (Cache.objects c);
      Alcotest.(check int) "and its bytes" (72 + 12) (Cache.bytes c);
      Alcotest.(check int) "index = directory-walk oracle" (Cache.entries c)
        (Cache.objects c))

let test_index_cross_process () =
  with_store (fun c ->
      (* a second handle on the same root stands in for a second
         process: queries refresh from the shared journal *)
      let c2 = Cache.open_ ~dir:(Cache.root c) in
      Alcotest.(check int) "empty at open" 0 (Cache.objects c2);
      Cache.put c (Key.of_material "cross") "x";
      Alcotest.(check int) "foreign append picked up" 1 (Cache.objects c2))

let test_index_torn_tail_and_rebuild () =
  with_store (fun c ->
      Cache.put c (Key.of_material "t1") "a";
      Cache.put c (Key.of_material "t2") "bb";
      let journal = Filename.concat (Cache.root c) "index.jnl" in
      (* a crashed writer's partial record: no newline, no size field *)
      let oc = open_out_gen [ Open_append ] 0o644 journal in
      output_string oc "+ deadbeef";
      close_out oc;
      let c2 = Cache.open_ ~dir:(Cache.root c) in
      Alcotest.(check int) "torn tail not counted" 2 (Cache.objects c2);
      (* journal gone entirely: open rebuilds from the object tree *)
      Sys.remove journal;
      let c3 = Cache.open_ ~dir:(Cache.root c) in
      Alcotest.(check int) "rebuilt from the tree" 2 (Cache.objects c3);
      Alcotest.(check int) "rebuilt bytes" (72 + 1 + (72 + 2))
        (Cache.bytes c3))

let test_index_compact () =
  with_store (fun c ->
      let keys =
        Array.init 5 (fun i -> Key.of_material (Printf.sprintf "compact-%d" i))
      in
      Array.iter (fun k -> Cache.put c k "v") keys;
      Cache.evict c keys.(1);
      Cache.evict c keys.(3);
      Index.compact (Cache.index c);
      let journal = Filename.concat (Cache.root c) "index.jnl" in
      let lines = In_channel.with_open_text journal In_channel.input_lines in
      Alcotest.(check int) "magic line + one record per live object" 4
        (List.length lines);
      let recs = List.tl lines in
      Alcotest.(check bool) "all adds, sorted" true
        (List.for_all (fun l -> String.length l > 2 && l.[0] = '+') recs
        && List.sort compare recs = recs);
      let c2 = Cache.open_ ~dir:(Cache.root c) in
      Alcotest.(check int) "compacted journal replays" 3 (Cache.objects c2))

let test_progress_of_index () =
  with_store (fun c ->
      let scenarios = sweep_scenarios () in
      ignore (Sweep.sweep ~cache:c ~jobs:1 (Array.sub scenarios 0 2));
      let m = Manifest.create ~points:(Array.map Key.of_scenario scenarios) in
      Alcotest.(check int) "index progress = stat progress"
        (Manifest.progress c m)
        (Manifest.progress_of_index c m);
      Alcotest.(check int) "partial progress visible" 2
        (Manifest.progress_of_index c m);
      ignore (Sweep.sweep ~cache:c ~jobs:1 scenarios);
      Alcotest.(check int) "complete progress visible"
        (Array.length scenarios)
        (Manifest.progress_of_index c m))

(* ---------------- Garbage collection ---------------- *)

let age path seconds_ago =
  let t = Unix.gettimeofday () -. seconds_ago in
  Unix.utimes path t t

let test_gc_orphans_and_roots () =
  with_store (fun c ->
      let scenarios = sweep_scenarios () in
      (* a completed sweep: manifest + its rooted points *)
      ignore (Sweep.sweep ~cache:c ~jobs:1 scenarios);
      let n = Array.length scenarios in
      let orphan = Key.of_material "gc-orphan" in
      Cache.put c orphan "unreachable";
      (* fresh objects sit inside the generation guard *)
      let r0 = Store_gc.run ~min_age:3600. c in
      Alcotest.(check int) "guarded orphan survives" 0 r0.Store_gc.collected;
      (* aged past the guard: dry-run reports without deleting *)
      age (entry_path (Cache.root c) orphan) 7200.;
      let r1 = Store_gc.run ~dry_run:true c in
      Alcotest.(check int) "dry-run counts it" 1 r1.Store_gc.collected;
      Alcotest.(check bool) "dry-run deletes nothing" true (Cache.mem c orphan);
      let r2 = Store_gc.run c in
      Alcotest.(check int) "collected" 1 r2.Store_gc.collected;
      Alcotest.(check bool) "orphan gone" false (Cache.mem c orphan);
      Alcotest.(check int) "rooted points survive" n (Cache.entries c);
      Alcotest.(check int) "collection accounted" 1 (Cache.gc_collected c);
      Alcotest.(check int) "index followed" n (Cache.objects c);
      (* age the rooted points too: liveness comes from the manifest,
         not the generation guard *)
      Array.iter
        (fun s -> age (entry_path (Cache.root c) (Key.of_scenario s)) 7200.)
        scenarios;
      let r3 = Store_gc.run c in
      Alcotest.(check int) "old but rooted: still live" 0
        r3.Store_gc.collected;
      Cache.reset_stats c;
      ignore (Sweep.sweep ~cache:c ~jobs:1 scenarios);
      Alcotest.(check int) "warm sweep intact after gc" 0
        (Cache.stats c).Cache.misses)

(* ---------------- Fsck ---------------- *)

let test_fsck_clean_and_corrupt () =
  with_store (fun c ->
      let keys =
        Array.init 4 (fun i -> Key.of_material (Printf.sprintf "fsck-%d" i))
      in
      Array.iteri (fun i k -> Cache.put c k (String.make (i + 2) 'x')) keys;
      let r = Fsck.run ~jobs:2 c in
      Alcotest.(check int) "clean: checked" 4 r.Fsck.checked;
      Alcotest.(check int) "clean: ok" 4 r.Fsck.ok;
      Alcotest.(check int) "clean: corrupt" 0 r.Fsck.corrupt;
      Alcotest.(check int) "clean: stale" 0 r.Fsck.stale_index;
      (* flip a payload bit: exactly that entry is found and evicted *)
      ignore (corrupt_entry (Cache.root c) keys.(2));
      let r2 = Fsck.run ~jobs:2 c in
      Alcotest.(check int) "corrupt found" 1 r2.Fsck.corrupt;
      Alcotest.(check int) "evicted" 1 r2.Fsck.evicted;
      Alcotest.(check bool) "entry gone" false (Cache.mem c keys.(2));
      Alcotest.(check int) "index followed" 3 (Cache.objects c);
      (* detect-only mode reports but keeps the entry *)
      ignore (corrupt_entry (Cache.root c) keys.(1));
      let r3 = Fsck.run ~evict:false c in
      Alcotest.(check int) "detected without evicting" 1 r3.Fsck.corrupt;
      Alcotest.(check int) "nothing evicted" 0 r3.Fsck.evicted;
      Alcotest.(check bool) "entry kept" true (Cache.mem c keys.(1)))

let test_fsck_index_repair () =
  with_store (fun c ->
      let a = Key.of_material "repair-a" and b = Key.of_material "repair-b" in
      Cache.put c a "aaaa";
      Cache.put c b "bbbb";
      (* stale record: object removed behind the index's back *)
      Sys.remove (entry_path (Cache.root c) a);
      (* missing record: the index wrongly believes [b] vanished *)
      Index.record_remove (Cache.index c) (Key.to_hex b);
      let r = Fsck.run c in
      Alcotest.(check int) "stale record dropped" 1 r.Fsck.stale_index;
      Alcotest.(check int) "missing record re-added" 1 r.Fsck.missing_index;
      Alcotest.(check int) "index = walk afterwards" (Cache.entries c)
        (Cache.objects c);
      Alcotest.(check int) "exactly the surviving object" 1 (Cache.objects c))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "store"
    [
      ("sha256", [
        Alcotest.test_case "fips vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "differential vs reference" `Quick
          test_sha256_differential;
        Alcotest.test_case "streaming = oneshot" `Quick test_sha256_streaming;
        Alcotest.test_case "key material" `Quick test_key_material;
      ]);
      ("scenario-encoding", [
        Alcotest.test_case "round-trip" `Quick test_roundtrip;
        Alcotest.test_case "describe" `Quick test_describe;
        Alcotest.test_case "key: field order + elision" `Quick
          test_key_field_order_and_elision;
        Alcotest.test_case "key: single-field sensitivity" `Quick
          test_key_sensitivity;
        Alcotest.test_case "decode rejects" `Quick test_decode_rejects;
      ]);
      qsuite "scenario-qcheck" [ qcheck_roundtrip ];
      ("cache", [
        Alcotest.test_case "basics" `Quick test_cache_basics;
        Alcotest.test_case "refuses foreign dir" `Quick
          test_cache_refuses_foreign_dir;
        Alcotest.test_case "corruption evicts + recomputes" `Quick
          test_cache_corruption_evicts;
        Alcotest.test_case "manifest" `Quick test_manifest;
      ]);
      ("sweep", [
        Alcotest.test_case "cold then warm" `Quick test_sweep_cold_then_warm;
        Alcotest.test_case "resume after crash" `Quick
          test_sweep_resume_after_crash;
        Alcotest.test_case "jobs-independent" `Quick
          test_sweep_jobs_independent;
        Alcotest.test_case "memo_run all models" `Quick test_memo_run_models;
        Alcotest.test_case "faulted replicas" `Quick
          test_exec_faulted_replicas;
      ]);
      ("resilience-memo", [
        Alcotest.test_case "warm bisect is free" `Quick test_resilience_memo;
      ]);
      ("index", [
        Alcotest.test_case "put/evict keep it in lockstep" `Quick
          test_index_lockstep;
        Alcotest.test_case "cross-process refresh" `Quick
          test_index_cross_process;
        Alcotest.test_case "torn tail tolerated, rebuild from tree" `Quick
          test_index_torn_tail_and_rebuild;
        Alcotest.test_case "compact rewrites the journal" `Quick
          test_index_compact;
        Alcotest.test_case "progress_of_index = progress" `Quick
          test_progress_of_index;
      ]);
      ("gc", [
        Alcotest.test_case "orphans collected, roots and guard kept" `Quick
          test_gc_orphans_and_roots;
      ]);
      ("fsck", [
        Alcotest.test_case "clean pass, corruption evicted" `Quick
          test_fsck_clean_and_corrupt;
        Alcotest.test_case "index repair both directions" `Quick
          test_fsck_index_repair;
      ]);
    ]
