(* Benchmark harness.

   Default run (what `dune exec bench/main.exe` produces):
   1. regenerates every figure and table of the paper — the experiment
      index of DESIGN.md §4 — printing the reproduced rows/series and the
      paper-vs-measured checks (fanned out across a domain pool; output
      is byte-identical to a serial run);
   2. runs a Bechamel micro-benchmark suite with one Test.make per
      experiment id, measuring that experiment's computational kernel.

   `--figures-only` / `--perf-only` restrict to one half;
   `--serial` forces the figure pass onto one domain;
   `--compare` times the figure pass serially AND in parallel, checks the
   outputs are byte-identical, and reports the speedup;
   `--jobs N` sets the pool size (default DCECC_JOBS or the recommended
   domain count);
   `--out DIR` additionally writes the figure data as CSVs;
   `--json FILE` writes the per-kernel estimates as JSON (the seed for
   the BENCH_* perf trajectory);
   `--simnet-json FILE` writes the packet-engine throughput rows
   (events/sec and minor words/event for the structure-of-arrays engine
   vs the boxed seed baseline) as JSON;
   `--simnet-only` runs just the packet-engine throughput suite (the
   fast way to regenerate the committed BENCH_simnet.json);
   `--kernels-only` runs just the Bechamel kernel suite (the fast way to
   regenerate the committed BENCH_kernels.json);
   `--smoke` runs only the fast packet-engine allocation assertions and
   exits — the @bench-smoke dune alias. *)

let default = Fluid.Params.default

let big =
  Fluid.Params.with_buffer default (2. *. Fluid.Criterion.required_buffer default)

(* ------------------------------------------------------------------ *)
(* Part 1: figure regeneration                                         *)
(* ------------------------------------------------------------------ *)

(* Wall clock, not [Sys.time]: CPU time over-reports as soon as the
   figures run on multiple domains. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let render_figures figs =
  String.concat ""
    (List.map
       (fun (id, text) ->
         Printf.sprintf "################ %s ################\n%s\n" id text)
       figs)

let run_figures ~jobs out =
  let jobs =
    match jobs with Some j -> j | None -> Parallel.Pool.default_size ()
  in
  let figs, dt = timed (fun () -> Dcecc_core.Figures.all ~jobs ?out ()) in
  print_string (render_figures figs);
  Printf.printf "[figure regeneration took %.1f s on %d domain%s]\n\n" dt jobs
    (if jobs = 1 then "" else "s")

(* Wall clock plus the main domain's Gc.minor_words delta. In the
   parallel pass worker domains allocate on their own minor heaps, so
   the delta between the serial and parallel figures is the allocation
   the pool moved off the coordinating domain. *)
let timed_words f =
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0, Gc.minor_words () -. w0)

let run_compare ~jobs out =
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Stdlib.max 2 (Parallel.Pool.default_size ())
  in
  let serial, dt_serial, mw_serial =
    timed_words (fun () -> Dcecc_core.Figures.all ~jobs:1 ?out ())
  in
  let parallel, dt_par, mw_par =
    timed_words (fun () -> Dcecc_core.Figures.all ~jobs ?out ())
  in
  let identical = render_figures serial = render_figures parallel in
  Printf.printf
    "################ serial vs parallel (figures) ################\n";
  Printf.printf "serial   (1 domain)  : %8.2f s  %12.0f minor words\n"
    dt_serial mw_serial;
  Printf.printf "parallel (%d domains): %8.2f s  %12.0f minor words\n" jobs
    dt_par mw_par;
  Printf.printf "speedup              : %8.2fx\n" (dt_serial /. dt_par);
  Printf.printf "minor words off main : %12.0f (%.1f%% of serial)\n"
    (mw_serial -. mw_par)
    (if mw_serial > 0. then 100. *. (mw_serial -. mw_par) /. mw_serial else 0.);
  Printf.printf "output byte-identical: %b\n\n" identical;
  if not identical then exit 1

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel performance suite (one Test.make per experiment)   *)
(* ------------------------------------------------------------------ *)

(* The RK4 substrate kernels are shared between the Bechamel suite and
   the direct allocation check below. *)
let ode_step () =
  let f _t y = [| y.(1); -.y.(0) |] in
  ignore (Numerics.Ode.step Numerics.Ode.Rk4 f 0. [| 1.; 0. |] 0.01)

let ode_ws = Numerics.Ode.workspace 2
let ode_y = [| 1.; 0. |]
let ode_dst = [| 0.; 0. |]

let ode_field (y : float array) (dst : float array) =
  dst.(0) <- y.(1);
  dst.(1) <- -.y.(0)

let ode_step_into () =
  Numerics.Ode.step_auto_into ode_ws Numerics.Ode.Rk4 ode_field ode_y 0.01
    ode_dst

(* Bechamel's OLS estimate of minor_allocated rounds tiny per-run
   footprints down to zero, so the headline zero-allocation claim is also
   checked the blunt way: a raw [Gc.minor_words] delta over a fixed
   number of runs. *)
let minor_words_per_run f =
  for _ = 1 to 100 do
    f ()
  done;
  let runs = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to runs do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int runs

let run_alloc_check () =
  Printf.printf
    "\nGc.minor_words delta per step: allocating rk4 step = %.1f words, \
     in-place step_auto_into = %.1f words\n"
    (minor_words_per_run ode_step)
    (minor_words_per_run ode_step_into)

(* Payload size for the SHA-256 throughput rows: large enough that the
   per-call setup vanishes, small enough for many runs per quota. The
   JSON rows carry a derived mb_per_s so the store-hash throughput claim
   is tracked directly. *)
let sha_bytes = 262144

let kernels () =
  let open Bechamel in
  (* Small deterministic kernels representative of each experiment's
     dominant computation. *)
  let fig3 () =
    (* taxonomy: classify the equilibrium of both regions *)
    ignore (Phaseplane.Singular.classify (Fluid.Linearized.jacobian default Fluid.Linearized.Increase));
    ignore (Phaseplane.Singular.classify (Fluid.Linearized.jacobian default Fluid.Linearized.Decrease))
  in
  let spiral_c = Fluid.Spiral.of_region default Fluid.Linearized.Increase in
  let fig4 () =
    ignore (Fluid.Spiral.extremum spiral_c ~x0:(-2.5e6) ~y0:5e8)
  in
  let node_c =
    Fluid.Node.of_region Dcecc_core.Figures.case4_params Fluid.Linearized.Decrease
  in
  let fig5 () = ignore (Fluid.Node.extremum node_c ~x0:1e6 ~y0:2e8) in
  let fig6 () = ignore (Fluid.Flowmap.first_overshoot default) in
  let lc_sys, _ = Dcecc_core.Figures.genuine_limit_cycle_system () in
  let lc_sec =
    Phaseplane.Poincare.line_section ~dir:Numerics.Ode.Up
      ~normal:(Numerics.Vec2.make 1. 0.1) ()
  in
  let fig7 () = ignore (Phaseplane.Poincare.return_map lc_sys lc_sec 2.0) in
  let fig8 () =
    ignore (Fluid.Flowmap.first_overshoot Dcecc_core.Figures.case2_params)
  in
  let fig9 () =
    ignore
      (Fluid.Flowmap.trace Dcecc_core.Figures.case3_params
         (Fluid.Model.start_point Dcecc_core.Figures.case3_params))
  in
  let fig10 () =
    ignore
      (Fluid.Flowmap.trace Dcecc_core.Figures.case4_params
         (Fluid.Model.start_point Dcecc_core.Figures.case4_params))
  in
  let t1 () = ignore (Fluid.Criterion.required_buffer default) in
  let v1 () =
    (* one millisecond of packet simulation at the validation parameters *)
    let p = Dcecc_core.Compare.validation_params in
    let cfg =
      {
        (Simnet.Runner.default_config ~t_end:1e-3 ~sample_dt:1e-4 p) with
        Simnet.Runner.enable_pause = false;
      }
    in
    ignore (Simnet.Runner.run cfg)
  in
  let v2 () =
    ignore (Control.Linear_baseline.analyze (Fluid.Params.loop_params default))
  in
  let a1 () = ignore (Fluid.Transient.measure ~horizon:1e-3 big) in
  let a2 () = ignore (Fluid.Delayed.simulate ~t_end:2e-3 ~tau:2e-6 big) in
  let a3 () =
    let sys = Fluid.Linearized.system default in
    ignore
      (Phaseplane.Trajectory.integrate
         ~solver:(Phaseplane.Trajectory.Fixed (Numerics.Ode.Rk4, 1e-6))
         ~t_max:5e-4 sys
         (Fluid.Model.start_point default))
  in
  let p1 () =
    let p = Fluid.Params.with_buffer default 15e6 in
    ignore (Simnet.Fera.run (Simnet.Fera.default_config ~t_end:2e-3 p))
  in
  let p2 () =
    ignore
      (Fluid.Aimd_fairness.iterate
         (Fluid.Aimd_fairness.Aimd { increase = 1e8; decrease = 0.2 })
         ~capacity:10e9 ~n:500
         { Fluid.Aimd_fairness.r1 = 9e9; r2 = 1e9 })
  in
  let m1 () =
    let p = Fluid.Params.with_buffer default 15e6 in
    ignore
      (Simnet.Multihop.run (Simnet.Multihop.default_config ~t_end:2e-3 p))
  in
  let b1 () =
    ignore (Fluid.Safe_region.classify default ~q:1e6 ~r:2e8)
  in
  let w1 () =
    let wl = Simnet.Workload.poisson ~id:0 ~mean_rate:2e9 ~seed:7 in
    let e = Simnet.Engine.create () in
    let count = ref 0 in
    Simnet.Workload.start wl e ~sink:(fun _e _p -> incr count);
    Simnet.Engine.run ~until:1e-3 e
  in
  (* substrate micro-kernels for the ablation notes: [ode_step] is the
     historical allocating step, [ode_step_into] the in-place variant
     (same math bit-for-bit, preallocated workspace, autonomous field —
     zero minor-heap allocation per step) *)
  let nonlinear_excursion () =
    ignore (Fluid.Stability.first_excursion ~t_max:1e-3 big)
  in
  (* RCP stepper kernels: the Smooth_fast right-hand sides of both
     literature variants driven by the in-place RK4 step — the exact
     allocation-free path RCP portraits and refine traces ride — plus
     one full clamped fluid trace. *)
  let rcp_ws = Numerics.Ode.workspace 2 in
  let rcp_y = [| 1e5; -1e8 |] in
  let rcp_dst = [| 0.; 0. |] in
  let rcp_rhs_ac =
    Phaseplane.System.to_auto (Fluid.Rcp.system (Fluid.Rcp.make default))
  in
  let rcp_rhs_load =
    Phaseplane.System.to_auto
      (Fluid.Rcp.system (Fluid.Rcp.make ~variant:Fluid.Rcp.By_load default))
  in
  let rcp_step_ac () =
    Numerics.Ode.step_auto_into rcp_ws Numerics.Ode.Rk4 rcp_rhs_ac rcp_y 1e-6
      rcp_dst
  in
  let rcp_step_load () =
    Numerics.Ode.step_auto_into rcp_ws Numerics.Ode.Rk4 rcp_rhs_load rcp_y
      1e-6 rcp_dst
  in
  let rcp_fluid () =
    ignore (Fluid.Rcp.simulate ~t_end:1e-3 (Fluid.Rcp.make default))
  in
  let sha_payload = String.init sha_bytes (fun i -> Char.chr (i land 0xff)) in
  let sha256 () = ignore (Store.Key.sha256_hex sha_payload : string) in
  let sha256_ref () =
    ignore (Store.Key.sha256_reference sha_payload : string)
  in
  Test.make_grouped ~name:"dcecc"
    [
      Test.make ~name:"fig3_taxonomy" (Staged.stage fig3);
      Test.make ~name:"fig4_spiral" (Staged.stage fig4);
      Test.make ~name:"fig5_node" (Staged.stage fig5);
      Test.make ~name:"fig6_case1" (Staged.stage fig6);
      Test.make ~name:"fig7_limit_cycle" (Staged.stage fig7);
      Test.make ~name:"fig8_case2" (Staged.stage fig8);
      Test.make ~name:"fig9_case3" (Staged.stage fig9);
      Test.make ~name:"fig10_case4" (Staged.stage fig10);
      Test.make ~name:"t1_criterion" (Staged.stage t1);
      Test.make ~name:"v1_fluid_vs_packet" (Staged.stage v1);
      Test.make ~name:"v2_linear_vs_strong" (Staged.stage v2);
      Test.make ~name:"a1_transient_sampling" (Staged.stage a1);
      Test.make ~name:"a2_delay_margin" (Staged.stage a2);
      Test.make ~name:"a3_solver_ablation" (Staged.stage a3);
      Test.make ~name:"p1_paradigms" (Staged.stage p1);
      Test.make ~name:"p2_aimd_fairness" (Staged.stage p2);
      Test.make ~name:"w1_cross_traffic" (Staged.stage w1);
      Test.make ~name:"b1_safe_region" (Staged.stage b1);
      Test.make ~name:"m1_multihop" (Staged.stage m1);
      Test.make ~name:"kernel_rk4_step" (Staged.stage ode_step);
      Test.make ~name:"kernel_rk4_step_into" (Staged.stage ode_step_into);
      Test.make ~name:"kernel_rcp_step_into" (Staged.stage rcp_step_ac);
      Test.make ~name:"kernel_rcp_step_into_by_load"
        (Staged.stage rcp_step_load);
      Test.make ~name:"r1_rcp_fluid" (Staged.stage rcp_fluid);
      Test.make ~name:"kernel_nonlinear_excursion"
        (Staged.stage nonlinear_excursion);
      Test.make ~name:"store_sha256_256k" (Staged.stage sha256);
      Test.make ~name:"store_sha256_ref_256k" (Staged.stage sha256_ref);
    ]

type estimate = {
  name : string;
  time_ns : float;
  minor_words : float;
  verdict_evals : float option;
      (* adaptive-refinement rows: logical verdict evaluations spent *)
}

(* Derived throughput for the fixed-payload hash rows.
   bytes / (ns / 1e9) / 1e6 = bytes / ns * 1e3 MB/s. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let sha_mb_per_s e =
  if contains e.name "sha256" && e.time_ns > 0. then
    Some (float_of_int sha_bytes /. e.time_ns *. 1e3)
  else None

(* Adaptive boundary refinement vs the dense raster it replaces: trace
   the strong-stability safe region's boundary with the quadtree +
   marching-squares engine and evaluate the full corner lattice at the
   identical fine resolution. Single timed runs (the safe-region verdict
   is a front integration, far above Bechamel's noise floor); the
   headline column is verdict_evals — boundary-length versus raster-area
   cost — which is exactly reproducible, unlike wall time. *)
let refine_coarse = 8
let refine_levels = 5

let refine_rows () =
  let p = default in
  let n = refine_coarse * (1 lsl refine_levels) in
  let t, adaptive_s =
    timed (fun () ->
        Refine.Safe_plane.trace
          ~coarse:(refine_coarse, refine_coarse)
          ~levels:refine_levels p)
  in
  let (_, dense_evals), dense_s =
    timed (fun () ->
        Refine.Engine.dense_mixed_cells
          (Refine.Safe_plane.domain p)
          ~nx:n ~ny:n
          (Refine.Safe_plane.verdicts p))
  in
  [
    {
      name = "refine_safe_region_adaptive";
      time_ns = adaptive_s *. 1e9;
      minor_words = nan;
      verdict_evals = Some (float_of_int t.Refine.Engine.evaluations);
    };
    {
      name = "refine_safe_region_dense";
      time_ns = dense_s *. 1e9;
      minor_words = nan;
      verdict_evals = Some (float_of_int dense_evals);
    };
  ]

let estimates_of instance raw =
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name v acc ->
      let est =
        match Analyze.OLS.estimates v with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      (name, est) :: acc)
    results []

let run_perf () =
  let open Bechamel in
  Printf.printf "################ performance (Bechamel) ################\n";
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.2) ~kde:None ~stabilize:false
      ()
  in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ minor_allocated; monotonic_clock ]
      (kernels ())
  in
  let times = estimates_of Toolkit.Instance.monotonic_clock raw in
  let words = estimates_of Toolkit.Instance.minor_allocated raw in
  let rows =
    List.sort compare
      (List.map
         (fun (name, t) ->
           let mw =
             match List.assoc_opt name words with Some w -> w | None -> nan
           in
           { name; time_ns = t; minor_words = mw; verdict_evals = None })
         times)
    @ refine_rows ()
  in
  let fmt_time ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
    else Printf.sprintf "%.1f ns" ns
  in
  let fmt_words w =
    if Float.is_nan w then "n/a" else Printf.sprintf "%.1f" w
  in
  Report.Table.print
    ~headers:[ "experiment kernel"; "time per run"; "minor words/run" ]
    ~rows:
      (List.map
         (fun e -> [ e.name; fmt_time e.time_ns; fmt_words e.minor_words ])
         rows);
  List.iter
    (fun e ->
      match sha_mb_per_s e with
      | Some mb -> Printf.printf "%s throughput: %.1f MB/s\n" e.name mb
      | None -> ())
    rows;
  List.iter
    (fun e ->
      match e.verdict_evals with
      | Some v -> Printf.printf "%s: %.0f verdict evaluations\n" e.name v
      | None -> ())
    rows;
  rows

(* JSON writer over the shared fragments in [Telemetry.Json]. *)
let write_json path rows =
  let module J = Telemetry.Json in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n  \"kernels\": [\n";
      List.iteri
        (fun i e ->
          let cells =
            [
              ("name", J.str e.name);
              ("time_ns_per_run", J.float e.time_ns);
              ("minor_words_per_run", J.float e.minor_words);
            ]
            @ (match sha_mb_per_s e with
              | Some mb -> [ ("mb_per_s", J.float mb) ]
              | None -> [])
            @
            match e.verdict_evals with
            | Some v -> [ ("verdict_evals", J.float v) ]
            | None -> []
          in
          Printf.fprintf oc "    %s%s\n" (J.obj cells)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  ]\n}\n");
  Printf.printf "\nwrote %s\n" path

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let opt name =
    let rec find = function
      | flag :: v :: _ when flag = name -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
  if has "--smoke" then begin
    Simnet_bench.smoke ();
    exit 0
  end;
  if has "--simnet-only" then begin
    let json = opt "--simnet-json" in
    ignore (Simnet_bench.run ?json () : Simnet_bench.row list);
    exit 0
  end;
  let out = opt "--out" in
  let json = opt "--json" in
  let simnet_json = opt "--simnet-json" in
  (* reject a bad --json destination up front rather than after the
     multi-minute perf run *)
  (match json with
  | Some path -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc -> close_out oc
      | exception Sys_error msg -> fail "bench: cannot write --json %s" msg)
  | None -> ());
  (match simnet_json with
  | Some path -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc -> close_out oc
      | exception Sys_error msg ->
          fail "bench: cannot write --simnet-json %s" msg)
  | None -> ());
  if has "--kernels-only" then begin
    let rows = run_perf () in
    run_alloc_check ();
    (match json with Some path -> write_json path rows | None -> ());
    exit 0
  end;
  let jobs =
    if has "--serial" then Some 1
    else
      match opt "--jobs" with
      | None -> None
      | Some v -> (
          match int_of_string_opt v with
          | Some j when j >= 1 -> Some j
          | Some _ | None ->
              fail "bench: --jobs expects a positive integer, got %S" v)
  in
  if has "--compare" then run_compare ~jobs out
  else if not (has "--perf-only") then run_figures ~jobs out;
  if not (has "--figures-only") && not (has "--compare") then begin
    let rows = run_perf () in
    run_alloc_check ();
    (match json with Some path -> write_json path rows | None -> ());
    ignore (Simnet_bench.run ?json:simnet_json () : Simnet_bench.row list)
  end
