(* Packet-engine throughput suite.

   Measures the structure-of-arrays engine stack against the seed
   implementation preserved in [Boxed_baseline], scenario by scenario:

   - simnet_engine / simnet_engine_boxed: the headline incast fan-in
     forwarding scenario (4096 staggered feeders through one switch),
     where the pending-event set is deep enough that the unboxed
     event-queue layout and the packet pool dominate;
   - simnet_runner / simnet_runner_boxed: the full closed-loop dumbbell
     (sources, BCN/PAUSE control, trace sampling) in the busy regime;
   - eventq_push_pop / eventq_boxed_push_pop: the queue in isolation;
   - switch_forwarding: minor words per frame on the pooled fast path.

   Reports events/sec and minor-heap words/event; [rows] feeds the
   BENCH_simnet JSON the perf trajectory tracks, [smoke] is the fast
   allocation-assertion pass wired into the @bench-smoke dune alias. *)

let params = Fluid.Params.with_buffer Fluid.Params.default 15e6

type row = { name : string; metrics : (string * float) list }

let metric row key =
  match List.assoc_opt key row.metrics with Some v -> v | None -> nan

(* ------------------------------------------------------------------ *)
(* Headline scenario: incast fan-in forwarding, new stack vs seed      *)
(* ------------------------------------------------------------------ *)

(* [fanin_sources] staggered feeders pace pool-allocated frames through
   one pooled switch into a releasing sink, aggregate offered load just
   above line rate. With thousands of concurrent feeders the pending-
   event set is large, which is where the engine's data layout earns its
   keep: the structure-of-arrays heap sifts through contiguous unboxed
   keys while the seed heap chases a pointer per comparison, and the
   packet pool keeps the frame churn off the minor heap entirely.
   [Boxed_baseline.run_fanin] is the same scenario on the seed stack. *)
let fanin_sources = 4096

let pooled_fanin ~frames () =
  let pool = Simnet.Packet.Pool.create () in
  let e = Simnet.Engine.create () in
  let cfg =
    {
      (Simnet.Switch.default_config params ~cpid:1) with
      Simnet.Switch.enable_bcn = false;
      enable_pause = false;
      pool = Some pool;
    }
  in
  let sw = Simnet.Switch.create cfg ~control_out:(fun _ _ -> ()) in
  Simnet.Switch.set_forward sw (fun _e pkt ->
      Simnet.Packet.Pool.release pool pkt);
  let nsrc = fanin_sources in
  let gap =
    1.05 *. float_of_int nsrc
    *. float_of_int Simnet.Packet.data_frame_bits
    /. cfg.Simnet.Switch.capacity
  in
  let seq = ref 0 in
  let rec feed e =
    let pkt =
      Simnet.Packet.Pool.alloc_data pool ~seq:!seq ~now:(Simnet.Engine.now e)
        ~flow:0 ~rrt:None
    in
    incr seq;
    Simnet.Switch.receive sw e pkt;
    Simnet.Engine.schedule e ~delay:gap feed
  in
  for i = 0 to nsrc - 1 do
    Simnet.Engine.schedule e
      ~delay:(float_of_int i *. gap /. float_of_int nsrc)
      feed
  done;
  Simnet.Engine.run
    ~until:(float_of_int frames /. float_of_int nsrc *. gap)
    e;
  Simnet.Engine.events_processed e

let boxed_fanin ~frames () =
  Boxed_baseline.run_fanin ~nsrc:fanin_sources ~frames params

(* ------------------------------------------------------------------ *)
(* Full dumbbell runs (Runner.run vs seed replica), busy regime        *)
(* ------------------------------------------------------------------ *)

(* Start the sources at the equilibrium rate so the run is frame-dense
   from t = 0 rather than idling at the 2% probe rate; both stacks see
   the identical event sequence. *)
let pooled_events ~t_end () =
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end ~sample_dt:1e-4 params) with
      Simnet.Runner.initial_rate = Fluid.Params.equilibrium_rate params;
    }
  in
  (Simnet.Runner.run cfg).Simnet.Runner.events_processed

let boxed_events ~t_end () =
  (Boxed_baseline.run
     ~initial_rate:(Fluid.Params.equilibrium_rate params)
     ~t_end ~sample_dt:1e-4 params)
    .Boxed_baseline.events

(* The RCP loop on the same pooled engine: rate-paced sources, one
   switch, a rate frame per flow per control interval. Started at the
   fair share so the loop is in its steady regime, like the BCN runner
   row above. *)
let rcp_events ~t_end () =
  let cfg =
    {
      (Simnet.Rcp.default_config ~t_end ~sample_dt:1e-4 params) with
      Simnet.Rcp.initial_rate =
        params.Fluid.Params.capacity
        /. float_of_int params.Fluid.Params.n_flows;
    }
  in
  (Simnet.Rcp.run cfg).Simnet.Rcp.events_processed

(* Repeat [f] (which returns an event count) until [min_time] has
   elapsed; report events/sec and the Gc.minor_words delta per event. *)
let measure_events ~min_time f =
  ignore (f () : int);
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  let events = ref 0 in
  while Unix.gettimeofday () -. t0 < min_time || !events = 0 do
    events := !events + f ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let n = float_of_int !events in
  (n /. dt, dw /. n)

(* ------------------------------------------------------------------ *)
(* Event queue in isolation: push/pop churn                            *)
(* ------------------------------------------------------------------ *)

(* Deterministic pseudo-random keys (LCG), generated once. *)
let bench_keys n =
  let keys = Array.make n 0. in
  let state = ref 123456789 in
  for i = 0 to n - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    keys.(i) <- float_of_int !state
  done;
  keys

let soa_round q keys =
  for i = 0 to Array.length keys - 1 do
    Simnet.Eventq.push q keys.(i) 0
  done;
  while not (Simnet.Eventq.is_empty q) do
    ignore (Simnet.Eventq.pop_min q : int)
  done

let boxed_round q keys =
  for i = 0 to Array.length keys - 1 do
    Simnet.Eventq_boxed.push q keys.(i) 0
  done;
  let continue = ref true in
  while !continue do
    match Simnet.Eventq_boxed.pop q with
    | None -> continue := false
    | Some (_, _) -> ()
  done

(* One op = one push plus its pop. *)
let measure_queue ~min_time round =
  let keys = bench_keys 4096 in
  round keys;
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  let ops = ref 0 in
  while Unix.gettimeofday () -. t0 < min_time || !ops = 0 do
    round keys;
    ops := !ops + Array.length keys
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let n = float_of_int !ops in
  (dt /. n *. 1e9, dw /. n)

(* ------------------------------------------------------------------ *)
(* Heap vs calendar queue: steady-state churn at fixed populations     *)
(* ------------------------------------------------------------------ *)

(* The engine's actual access pattern is hold-and-churn: a pending set
   of roughly constant size where every pop of the minimum schedules a
   successor a short gap in the future. That is the regime where a
   calendar queue's O(1)-amortized buckets could beat the heap's
   O(log n) sift — so the race is run at several hold sizes, from the
   engine-typical tens of events up to the incast fan-in thousands.
   [Eventq] and [Eventq_calendar] share a signature, so one churn loop
   serves both; the first-class-module boundary boxes the float keys
   (~6 minor words/op), identically on both sides, so the words columns
   compare structure-owned allocation only as deltas from that floor.

   Committed verdict (BENCH_simnet.json): the heap wins decisively at
   the engine-typical population (hold 16), ties at 256 and gives up
   ~20% at 4096 while the calendar pays resize churn — so the engine
   keeps {!Simnet.Eventq}. *)
module type QUEUE = sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> float -> 'a -> unit
  val pop_min : 'a t -> 'a
  val min_key : 'a t -> float
  val is_empty : 'a t -> bool
end

let churn_rounds = 50_000

let churn (module Q : QUEUE) ~hold =
  let q = Q.create () in
  let state = ref 123456789 in
  let gap () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. 1073741824.
  in
  for _ = 1 to hold do
    Q.push q (gap ()) 0
  done;
  for _ = 1 to churn_rounds do
    let k = Q.min_key q in
    ignore (Q.pop_min q : int);
    Q.push q (k +. gap ()) 0
  done;
  while not (Q.is_empty q) do
    ignore (Q.pop_min q : int)
  done

(* One op = one min_key + pop_min + push at steady state. *)
let measure_churn ~min_time (module Q : QUEUE) ~hold =
  churn (module Q) ~hold;
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  let ops = ref 0 in
  while Unix.gettimeofday () -. t0 < min_time || !ops = 0 do
    churn (module Q) ~hold;
    ops := !ops + churn_rounds
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let n = float_of_int !ops in
  (dt /. n *. 1e9, dw /. n)

let churn_holds = [ 16; 256; 4096 ]

let churn_rows ~min_time () =
  List.concat_map
    (fun hold ->
      let heap_ns, heap_words =
        measure_churn ~min_time (module Simnet.Eventq : QUEUE) ~hold
      in
      let cal_ns, cal_words =
        measure_churn ~min_time (module Simnet.Eventq_calendar : QUEUE) ~hold
      in
      [
        {
          name = Printf.sprintf "eventq_heap_churn_%d" hold;
          metrics =
            [ ("ns_per_op", heap_ns); ("minor_words_per_op", heap_words) ];
        };
        {
          name = Printf.sprintf "eventq_calendar_churn_%d" hold;
          metrics =
            [
              ("ns_per_op", cal_ns);
              ("minor_words_per_op", cal_words);
              ("heap_over_calendar", heap_ns /. cal_ns);
            ];
        };
      ])
    churn_holds

(* ------------------------------------------------------------------ *)
(* Forwarding fast path: words per data frame through a pooled switch  *)
(* ------------------------------------------------------------------ *)

(* A single feeder paces pool-allocated frames through a switch into a
   releasing sink at just under line rate, so each frame is exactly one
   feed event plus one service completion. After warmup this path must
   allocate nothing. *)
let forwarding_words_per_frame ~frames () =
  let pool = Simnet.Packet.Pool.create () in
  let e = Simnet.Engine.create () in
  let cfg =
    {
      (Simnet.Switch.default_config params ~cpid:1) with
      Simnet.Switch.enable_bcn = false;
      enable_pause = false;
      pool = Some pool;
    }
  in
  let sw = Simnet.Switch.create cfg ~control_out:(fun _ _ -> ()) in
  Simnet.Switch.set_forward sw (fun _e pkt ->
      Simnet.Packet.Pool.release pool pkt);
  let gap =
    1.05 *. float_of_int Simnet.Packet.data_frame_bits
    /. cfg.Simnet.Switch.capacity
  in
  let seq = ref 0 in
  let rec feed e =
    let pkt =
      Simnet.Packet.Pool.alloc_data pool ~seq:!seq ~now:(Simnet.Engine.now e)
        ~flow:0 ~rrt:None
    in
    incr seq;
    Simnet.Switch.receive sw e pkt;
    Simnet.Engine.schedule e ~delay:gap feed
  in
  Simnet.Engine.schedule e ~delay:0. feed;
  let warm = 2048 in
  Simnet.Engine.run ~until:(float_of_int warm *. gap) e;
  let n0 = !seq in
  let w0 = Gc.minor_words () in
  Simnet.Engine.run ~until:(float_of_int (warm + frames) *. gap) e;
  let dw = Gc.minor_words () -. w0 in
  dw /. float_of_int (!seq - n0)

(* Same fast path with the congestion point armed (BCN marking on), bare
   vs interposed by an empty-plan fault injector on the control output.
   The bare BCN-on figure is nonzero — the switch boxes a float storing
   feedback into each emitted BCN record — so the injector's cost is the
   difference between the two, which must stay ~0: classification plus a
   match on an empty plan, no allocation. *)
let bcn_forwarding_words ~inject ~frames () =
  let pool = Simnet.Packet.Pool.create () in
  let e = Simnet.Engine.create () in
  let cfg =
    {
      (Simnet.Switch.default_config params ~cpid:1) with
      Simnet.Switch.enable_pause = false;
      pool = Some pool;
    }
  in
  let release _e pkt = Simnet.Packet.Pool.release pool pkt in
  let control_out =
    if inject then begin
      let inj = Faultnet.Injector.create Faultnet.Plan.none in
      let chan = Faultnet.Injector.channel inj in
      fun e pkt -> chan e pkt ~deliver:release ~drop:release
    end
    else release
  in
  let sw = Simnet.Switch.create cfg ~control_out in
  Simnet.Switch.set_forward sw release;
  let gap =
    1.05 *. float_of_int Simnet.Packet.data_frame_bits
    /. cfg.Simnet.Switch.capacity
  in
  let seq = ref 0 in
  let rec feed e =
    let pkt =
      Simnet.Packet.Pool.alloc_data pool ~seq:!seq ~now:(Simnet.Engine.now e)
        ~flow:0 ~rrt:None
    in
    incr seq;
    Simnet.Switch.receive sw e pkt;
    Simnet.Engine.schedule e ~delay:gap feed
  in
  Simnet.Engine.schedule e ~delay:0. feed;
  let warm = 2048 in
  Simnet.Engine.run ~until:(float_of_int warm *. gap) e;
  let n0 = !seq in
  let w0 = Gc.minor_words () in
  Simnet.Engine.run ~until:(float_of_int (warm + frames) *. gap) e;
  let dw = Gc.minor_words () -. w0 in
  dw /. float_of_int (!seq - n0)

(* ------------------------------------------------------------------ *)
(* Result store: cold sweep vs warm rerun                              *)
(* ------------------------------------------------------------------ *)

(* A small gi-grid of frame-dense BCN scenarios swept through a
   throwaway content-addressed store: the cold pass simulates and
   persists every point, the warm pass answers them all from disk
   (hash + read + unmarshal per point). The ratio is the price of a
   simulation over the price of a lookup, so the points mirror the
   store's actual economics — long frame-dense runs (tens of ms of
   simulation each) sampled coarsely enough that the stored payload
   stays ~100 KB. *)
let store_cold_and_warm ~points () =
  let dir = Filename.temp_dir "dcecc-bench-store" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let cache = Store.Cache.open_ ~dir in
      let sweep_params = Fluid.Params.with_flows params 10 in
      let scenarios =
        Array.init points (fun i ->
            Simnet.Scenario.bcn ~t_end:0.1 ~sample_dt:2e-4
              ~initial_rate:(Fluid.Params.equilibrium_rate sweep_params)
              (Fluid.Params.with_gains
                 ~gi:(2. +. (0.25 *. float_of_int i))
                 sweep_params))
      in
      let timed f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let cold, cold_s =
        timed (fun () -> Store.Sweep.sweep ~cache ~jobs:1 scenarios)
      in
      Store.Cache.reset_stats cache;
      let warm, warm_s =
        timed (fun () -> Store.Sweep.sweep ~cache ~jobs:1 scenarios)
      in
      if Marshal.to_string cold [] <> Marshal.to_string warm [] then
        failwith "store bench: warm sweep differs from cold";
      if (Store.Cache.stats cache).Store.Cache.misses <> 0 then
        failwith "store bench: warm sweep re-simulated";
      (cold_s, warm_s))

(* ------------------------------------------------------------------ *)
(* Resilience margin: bracketed bisection vs the dense severity scan   *)
(* ------------------------------------------------------------------ *)

(* One margin cell at matched resolution: bisection with [iters]
   halvings brackets the threshold to [max_severity / 2^iters], the
   dense scan walks [2^iters] uniform steps — same resolution, but the
   scan pays one packet run per step up to the first violation while
   bisection pays [2 + iters] logical runs total. Both report the run
   counts in their [evaluations] field, so the rows are exactly
   reproducible (wall time is carried as context). *)
let margin_iters = 7

let margin_rows () =
  let sc = List.hd (Faultnet.Resilience.paper_cases ()) in
  let ax = Faultnet.Resilience.Bcn_loss in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let bis, bis_s =
    timed (fun () ->
        Faultnet.Resilience.bisect ~iters:margin_iters ~seed:0 sc ax)
  in
  let scn, scan_s =
    timed (fun () ->
        Faultnet.Resilience.scan ~n:(1 lsl margin_iters) ~seed:0 sc ax)
  in
  [
    {
      name = "resilience_margin_bisect";
      metrics =
        [
          ("margin", bis.Faultnet.Resilience.margin);
          ("verdict_evals", float_of_int bis.Faultnet.Resilience.evaluations);
          ("seconds", bis_s);
        ];
    };
    {
      name = "resilience_margin_dense_scan";
      metrics =
        [
          ("margin", scn.Faultnet.Resilience.margin);
          ("verdict_evals", float_of_int scn.Faultnet.Resilience.evaluations);
          ("seconds", scan_s);
          ( "dense_over_adaptive_evals",
            float_of_int scn.Faultnet.Resilience.evaluations
            /. float_of_int bis.Faultnet.Resilience.evaluations );
        ];
    };
  ]

(* ------------------------------------------------------------------ *)
(* Object index: O(1) accounting vs the directory walk                 *)
(* ------------------------------------------------------------------ *)

(* The index's whole point is replacing per-key filesystem traffic on
   large stores. Populate one with [index_entries] objects, then time
   the two implementations of the same two questions: how many objects
   (directory walk vs journal replay + O(1) read) and how far along is
   a sweep (one stat per point vs one membership probe per point). *)
let index_entries = 20_000

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let index_rows () =
  let dir = Filename.temp_dir "dcecc-bench-index" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let cache = Store.Cache.open_ ~dir in
      let points =
        Array.init index_entries (fun i ->
            Store.Key.of_material (Printf.sprintf "bench-index-%d" i))
      in
      Array.iter (fun k -> Store.Cache.put cache k "x") points;
      let m = Store.Manifest.create ~points in
      let walk_s = best_of 3 (fun () -> Store.Cache.entries cache) in
      let index_s = best_of 3 (fun () -> Store.Cache.objects cache) in
      let stat_s = best_of 3 (fun () -> Store.Manifest.progress cache m) in
      let probe_s =
        best_of 3 (fun () -> Store.Manifest.progress_of_index cache m)
      in
      if Store.Cache.objects cache <> Store.Cache.entries cache then
        failwith "index bench: index disagrees with the directory walk";
      if
        Store.Manifest.progress_of_index cache m
        <> Store.Manifest.progress cache m
      then failwith "index bench: index progress disagrees with stat progress";
      [
        {
          name = "index_count_vs_walk";
          metrics =
            [
              ("objects", float_of_int index_entries);
              ("walk_s", walk_s);
              ("index_s", index_s);
              ("walk_over_index", walk_s /. index_s);
            ];
        };
        {
          name = "index_progress_vs_stat";
          metrics =
            [
              ("points", float_of_int index_entries);
              ("stat_s", stat_s);
              ("index_s", probe_s);
              ("stat_over_index", stat_s /. probe_s);
            ];
        };
      ])

(* ------------------------------------------------------------------ *)
(* Fabric: multi-process sweep with a mid-flight worker kill           *)
(* ------------------------------------------------------------------ *)

(* A 10^4-point cold sweep, run once through the plain single-process
   Store.Sweep path and once across two forked fabric workers — one of
   which is SIGKILLed mid-flight and replaced, so the run also pays one
   lease-TTL stall and the stolen range's duplicated work. The merged
   CSV and JSON must equal the single-process bytes exactly; the rows
   record the wall-clock ratio. Scenario points are deliberately tiny
   (~30 us of simulation each) so the bench measures fabric overhead,
   the store and the steal path, not the integrator. *)
let fabric_points = 10_000

let fabric_ttl = 0.5
let fabric_chunk = 64

(* per-point horizon picked so simulation, not store I/O, dominates:
   ~0.3 ms of packet work per point against ~0.15 ms of store write *)
let fabric_spec () =
  Fabric.Spec.Seeds
    {
      base =
        Simnet.Scenario.bcn ~t_end:2e-3 ~sample_dt:1e-3
          ~sampling:Simnet.Scenario.Bernoulli
          (Fluid.Params.with_flows Fluid.Params.default 4);
      first_seed = 0;
      count = fabric_points;
    }

let with_tmp_store f =
  let dir = Filename.temp_dir "dcecc-bench-fabric" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let spawn_fabric_worker ~dir ~worker spec =
  match Unix.fork () with
  | 0 ->
      (try
         let c = Store.Cache.open_ ~dir in
         ignore
           (Fabric.Worker.run ~chunk:fabric_chunk ~ttl:fabric_ttl ~poll:0.02
              ~worker c spec);
         Unix._exit 0
       with e ->
         Printf.eprintf "fabric bench worker %s died: %s\n%!" worker
           (Printexc.to_string e);
         Unix._exit 1)
  | pid -> pid

let fabric_rows () =
  let spec = fabric_spec () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* multi-process first: the workers fork while this process's heap
     is still pristine. Forking after the single-process measurement
     hands every child a copy-on-write image of the 10^4-outcome heap,
     and the children's own GC work against those inherited pages was
     measured to cost more than the sweep itself. *)
  let (merged_csv, merged_json, stored), multi_s =
    with_tmp_store (fun dir ->
        let r, dt =
          timed (fun () ->
              let a = spawn_fabric_worker ~dir ~worker:"bench-a" spec in
              let b = spawn_fabric_worker ~dir ~worker:"bench-b" spec in
              (* kill one worker mid-flight (the sweep takes ~4 s);
                 its unreleased lease must expire before a peer can
                 steal the range *)
              Unix.sleepf 1.0;
              Unix.kill a Sys.sigkill;
              ignore (Unix.waitpid [] a);
              let c = spawn_fabric_worker ~dir ~worker:"bench-c" spec in
              ignore (Unix.waitpid [] b);
              ignore (Unix.waitpid [] c))
        in
        ignore (r : unit);
        let cache = Store.Cache.open_ ~dir in
        let p = Fabric.Worker.progress ~chunk:fabric_chunk cache spec in
        ( ( Fabric.Merge.csv cache spec,
            Fabric.Merge.json cache spec,
            p.Fabric.Worker.stored ),
          dt ))
  in
  let (single_csv, single_json), single_s =
    with_tmp_store (fun dir ->
        let cache = Store.Cache.open_ ~dir in
        timed (fun () ->
            let outs =
              Store.Sweep.sweep ~cache ~jobs:1 (Fabric.Spec.scenarios spec)
            in
            (Fabric.Merge.csv_of spec outs, Fabric.Merge.json_of spec outs)))
  in
  if merged_csv <> single_csv || merged_json <> single_json then
    failwith "fabric bench: merged bytes differ from the single-process sweep";
  if stored <> fabric_points then
    failwith "fabric bench: points lost across the worker kill";
  [
    {
      name = "fabric_sweep_1proc";
      metrics =
        [ ("points", float_of_int fabric_points); ("seconds", single_s) ];
    };
    {
      name = "fabric_sweep_2proc_kill1";
      metrics =
        [
          ("seconds", multi_s);
          (* read against [cores]: two workers on one core time-slice,
             so the ideal there is 1.0 minus the kill's lease-TTL
             stall and the stolen range's duplicated work; with two or
             more cores the sweep halves *)
          ("speedup_vs_1proc", single_s /. multi_s);
          ("cores", float_of_int (Domain.recommended_domain_count ()));
          ("lease_ttl_s", fabric_ttl);
          ("byte_identical", 1.);
        ];
    };
  ]

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let rows ~min_time ~t_end () =
  (* first, before anything below touches a domain pool: these fork *)
  let fabric = fabric_rows () in
  let eng_eps, eng_words =
    measure_events ~min_time (pooled_fanin ~frames:200_000)
  in
  let box_eps, box_words =
    measure_events ~min_time (boxed_fanin ~frames:200_000)
  in
  let run_eps, run_words = measure_events ~min_time (pooled_events ~t_end) in
  let brun_eps, brun_words = measure_events ~min_time (boxed_events ~t_end) in
  let rcp_eps, rcp_words = measure_events ~min_time (rcp_events ~t_end) in
  let soa_ns, soa_words =
    measure_queue ~min_time:(0.5 *. min_time)
      (soa_round (Simnet.Eventq.create ()))
  in
  let boxed_ns, boxed_words =
    measure_queue ~min_time:(0.5 *. min_time)
      (boxed_round (Simnet.Eventq_boxed.create ()))
  in
  let churn = churn_rows ~min_time:(0.25 *. min_time) () in
  let fwd_words = forwarding_words_per_frame ~frames:100_000 () in
  let bcn_words = bcn_forwarding_words ~inject:false ~frames:100_000 () in
  let inj_words = bcn_forwarding_words ~inject:true ~frames:100_000 () in
  let cold_s, warm_s = store_cold_and_warm ~points:8 () in
  [
    {
      name = "simnet_engine";
      metrics =
        [ ("events_per_sec", eng_eps); ("minor_words_per_event", eng_words) ];
    };
    {
      name = "simnet_engine_boxed";
      metrics =
        [ ("events_per_sec", box_eps); ("minor_words_per_event", box_words) ];
    };
    {
      name = "speedup_vs_boxed";
      metrics = [ ("ratio", eng_eps /. box_eps) ];
    };
    {
      name = "simnet_runner";
      metrics =
        [ ("events_per_sec", run_eps); ("minor_words_per_event", run_words) ];
    };
    {
      name = "simnet_runner_boxed";
      metrics =
        [ ("events_per_sec", brun_eps); ("minor_words_per_event", brun_words) ];
    };
    {
      name = "simnet_rcp";
      metrics =
        [ ("events_per_sec", rcp_eps); ("minor_words_per_event", rcp_words) ];
    };
    {
      name = "eventq_push_pop";
      metrics = [ ("ns_per_op", soa_ns); ("minor_words_per_op", soa_words) ];
    };
    {
      name = "eventq_boxed_push_pop";
      metrics =
        [ ("ns_per_op", boxed_ns); ("minor_words_per_op", boxed_words) ];
    };
  ]
  @ churn
  @ [
    {
      name = "switch_forwarding";
      metrics = [ ("minor_words_per_frame", fwd_words) ];
    };
    {
      name = "switch_forwarding_bcn";
      metrics = [ ("minor_words_per_frame", bcn_words) ];
    };
    {
      name = "switch_forwarding_injected";
      metrics =
        [
          ("minor_words_per_frame", inj_words);
          ("injector_overhead_words", inj_words -. bcn_words);
        ];
    };
    {
      name = "store_warm_vs_cold";
      metrics =
        [
          ("cold_s", cold_s);
          ("warm_s", warm_s);
          ("speedup", cold_s /. warm_s);
        ];
    };
  ]
  @ margin_rows () @ index_rows () @ fabric

let print rows =
  Printf.printf "################ packet engine throughput ################\n";
  List.iter
    (fun r ->
      Printf.printf "%-24s" r.name;
      List.iter (fun (k, v) -> Printf.printf "  %s = %.4g" k v) r.metrics;
      print_newline ())
    rows;
  print_newline ()

(* One row per line through the shared [Telemetry.Json] fragments. *)
let write_json path rows =
  let module J = Telemetry.Json in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n  \"simnet\": [\n";
      List.iteri
        (fun i r ->
          let cells =
            ("name", J.str r.name)
            :: List.map (fun (k, v) -> (k, J.float v)) r.metrics
          in
          Printf.fprintf oc "    %s%s\n" (J.obj cells)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  ]\n}\n");
  Printf.printf "wrote %s\n" path

let run ?json () =
  let rows = rows ~min_time:1.0 ~t_end:5e-3 () in
  print rows;
  (match json with Some path -> write_json path rows | None -> ());
  rows

(* Fast allocation-assertion pass for @bench-smoke: a failed invariant
   here means the zero-allocation fast path regressed. *)
let smoke () =
  let fwd = forwarding_words_per_frame ~frames:20_000 () in
  Printf.printf "smoke: switch forwarding        %.4f minor words/frame\n" fwd;
  if fwd > 0.01 then begin
    Printf.eprintf
      "bench smoke FAILED: pooled forwarding allocates %.4f words/frame \
       (expected 0)\n"
      fwd;
    exit 1
  end;
  let bcn_bare = bcn_forwarding_words ~inject:false ~frames:20_000 () in
  let bcn_inj = bcn_forwarding_words ~inject:true ~frames:20_000 () in
  Printf.printf
    "smoke: injected forwarding      %.4f minor words/frame overhead\n"
    (bcn_inj -. bcn_bare);
  if bcn_inj -. bcn_bare > 0.01 then begin
    Printf.eprintf
      "bench smoke FAILED: empty-plan fault injector adds %.4f words/frame \
       on the forwarding path (expected 0)\n"
      (bcn_inj -. bcn_bare);
    exit 1
  end;
  let _, soa_words =
    measure_queue ~min_time:0.05 (soa_round (Simnet.Eventq.create ()))
  in
  Printf.printf "smoke: eventq push/pop          %.4f minor words/op\n"
    soa_words;
  if soa_words > 0.01 then begin
    Printf.eprintf
      "bench smoke FAILED: Eventq push/pop allocates %.4f words/op \
       (expected 0)\n"
      soa_words;
    exit 1
  end;
  let eps, words = measure_events ~min_time:0.2 (pooled_events ~t_end:1e-3) in
  Printf.printf
    "smoke: engine scenario          %.3g events/sec, %.2f minor words/event\n"
    eps words;
  if not (Float.is_finite eps && eps > 0.) then begin
    Printf.eprintf "bench smoke FAILED: engine throughput not positive\n";
    exit 1
  end;
  print_endline "bench smoke OK"
