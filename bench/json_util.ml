(* Hand-rolled JSON fragments shared by the benchmark writers (the repo
   carries no JSON dependency); every emitted value is a string-keyed
   object of floats, so escaping reduces to the kernel names, which are
   [a-z0-9_] already — escaped anyway for safety. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float f = if Float.is_nan f then "null" else Printf.sprintf "%.6g" f
