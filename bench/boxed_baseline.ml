(* Seed-faithful baseline for the packet-engine throughput benchmark.

   This module reproduces, verbatim in style, the original packet engine
   this repository shipped with before the structure-of-arrays rewrite:

   - the event queue is [Simnet.Eventq_boxed] (one record per entry,
     boxed float key) and every pop goes through an option/tuple;
   - every scheduled event allocates a fresh closure;
   - the switch buffer is a [Stdlib.Queue] (one cons cell per frame);
   - frames are immutable records allocated per transmission, with the
     [born] float boxed inside a mixed record;
   - per-frame mutable float state (rates, bit counters) lives in mixed
     records, so each store allocates a float box.

   It runs the same dumbbell scenario as [Simnet.Runner.run] — same
   constants, same update laws, same trace sampler — so events/sec here
   and there measure the same work. Only the implementation idiom
   differs, which is exactly what the benchmark wants to isolate. *)

module Q = Simnet.Eventq_boxed

type kind =
  | Data of { flow : int; rrt : int option }
  | Bcn of { flow : int; fb : float; cpid : int }
  | Pause of { on : bool }

type packet = { kind : kind; bits : int; born : float; seq : int }

let data_frame_bits = Simnet.Packet.data_frame_bits
let control_frame_bits = Simnet.Packet.control_frame_bits

type engine = {
  mutable clock : float;
  queue : (engine -> unit) Q.t;
  mutable processed : int;
}

let schedule e ~delay f = Q.push e.queue (e.clock +. delay) f

let run_engine ~until e =
  let continue = ref true in
  while !continue do
    match Q.peek e.queue with
    | None -> continue := false
    | Some (t, _) when t > until -> continue := false
    | Some _ -> (
        match Q.pop e.queue with
        | None -> continue := false
        | Some (t, f) ->
            e.clock <- t;
            e.processed <- e.processed + 1;
            f e)
  done

type source = {
  id : int;
  mutable rate : float;
  min_rate : float;
  max_rate : float;
  gi : float;
  gd : float;
  ru : float;
  hold_timeout : float;
  mutable rrt : int option;
  mutable fb_hold : float;
  mutable hold_until : float;
  mutable last_integration : float;
  mutable paused : bool;
  mutable seq : int;
  mutable epoch : int;
}

let clamp src v = Float.min src.max_rate (Float.max src.min_rate v)

let integrate_held src now =
  let upto = Float.min now src.hold_until in
  let dt = upto -. src.last_integration in
  if dt > 0. then begin
    let fb = src.fb_hold in
    if fb > 0. then
      src.rate <- clamp src (src.rate +. (src.gi *. src.ru *. fb *. dt))
    else if fb < 0. then
      src.rate <- clamp src (src.rate *. exp (src.gd *. fb *. dt))
  end;
  src.last_integration <- now

type switch = {
  capacity : float;
  buffer_bits : float;
  q0 : float;
  qsc : float;
  w : float;
  sample_every : int;
  items : packet Queue.t;
  mutable occupancy : float;
  mutable busy : bool;
  mutable upstream_paused : bool;
  mutable arrivals : int;
  mutable q_at_last_sample : float;
  mutable ctl_seq : int;
  mutable delivered : float;
}

type stats = { events : int; frames : int; delivered_bits : float }

let run ?initial_rate ~t_end ~sample_dt (p : Fluid.Params.t) =
  let n = p.Fluid.Params.n_flows in
  let fair = Fluid.Params.equilibrium_rate p in
  let initial_rate =
    match initial_rate with
    | Some r -> r
    | None -> Float.max p.Fluid.Params.mu (0.02 *. fair)
  in
  let control_delay = 1e-6 in
  let hold_timeout =
    50. *. float_of_int data_frame_bits
    /. (p.Fluid.Params.pm *. p.Fluid.Params.capacity)
  in
  let e = { clock = 0.; queue = Q.create (); processed = 0 } in
  let sw =
    {
      capacity = p.Fluid.Params.capacity;
      buffer_bits = p.Fluid.Params.buffer;
      q0 = p.Fluid.Params.q0;
      qsc = p.Fluid.Params.qsc;
      w = p.Fluid.Params.w;
      sample_every =
        Stdlib.max 1 (int_of_float (Float.round (1. /. p.Fluid.Params.pm)));
      items = Queue.create ();
      occupancy = 0.;
      busy = false;
      upstream_paused = false;
      arrivals = 0;
      q_at_last_sample = 0.;
      ctl_seq = 0;
      delivered = 0.;
    }
  in
  let sources =
    Array.init n (fun i ->
        {
          id = i;
          rate = Float.min (Float.max initial_rate (0.01 *. fair)) sw.capacity;
          min_rate = 0.01 *. fair;
          max_rate = sw.capacity;
          gi = p.Fluid.Params.gi;
          gd = p.Fluid.Params.gd;
          ru = p.Fluid.Params.ru;
          hold_timeout;
          rrt = None;
          fb_hold = 0.;
          hold_until = infinity;
          last_integration = 0.;
          paused = false;
          seq = 0;
          epoch = 0;
        })
  in
  let frames = ref 0 in
  let handle_bcn src ~now ~fb ~cpid =
    integrate_held src now;
    src.fb_hold <- fb;
    src.hold_until <- now +. src.hold_timeout;
    if fb < 0. then src.rrt <- Some cpid
  in
  let rec pacing_loop src epoch e =
    if src.epoch = epoch && not src.paused then begin
      integrate_held src e.clock;
      let pkt =
        {
          kind = Data { flow = src.id; rrt = src.rrt };
          bits = data_frame_bits;
          born = e.clock;
          seq = src.seq;
        }
      in
      src.seq <- src.seq + 1;
      incr frames;
      receive e pkt;
      let gap = float_of_int pkt.bits /. src.rate in
      schedule e ~delay:gap (pacing_loop src epoch)
    end
  and set_paused src e on =
    if on <> src.paused then begin
      src.paused <- on;
      src.epoch <- src.epoch + 1;
      src.last_integration <- e.clock;
      if not on then schedule e ~delay:0. (pacing_loop src src.epoch)
    end
  and dispatch_control e pkt =
    match pkt.kind with
    | Bcn { flow; fb; cpid } ->
        handle_bcn sources.(flow) ~now:e.clock ~fb ~cpid
    | Pause { on } -> Array.iter (fun src -> set_paused src e on) sources
    | Data _ -> ()
  and control_out e pkt =
    schedule e ~delay:control_delay (fun e -> dispatch_control e pkt)
  and send_pause e on =
    let seq = sw.ctl_seq in
    sw.ctl_seq <- seq + 1;
    sw.upstream_paused <- on;
    control_out e { kind = Pause { on }; bits = control_frame_bits; born = e.clock; seq }
  and check_pause e =
    if (not sw.upstream_paused) && sw.occupancy > sw.qsc then send_pause e true
    else if sw.upstream_paused && sw.occupancy < 0.9 *. sw.qsc then
      send_pause e false
  and serve e =
    if (not sw.busy) && not (Queue.is_empty sw.items) then begin
      let pkt = Queue.pop sw.items in
      sw.occupancy <- sw.occupancy -. float_of_int pkt.bits;
      sw.busy <- true;
      let tx = float_of_int pkt.bits /. sw.capacity in
      schedule e ~delay:tx (fun e ->
          sw.busy <- false;
          sw.delivered <- sw.delivered +. float_of_int pkt.bits;
          check_pause e;
          serve e)
    end
  and sample e ~flow ~rrt =
    let q = sw.occupancy in
    let dq = q -. sw.q_at_last_sample in
    sw.q_at_last_sample <- q;
    let sigma = (sw.q0 -. q) -. (sw.w *. dq) in
    let emit () =
      let seq = sw.ctl_seq in
      sw.ctl_seq <- seq + 1;
      control_out e
        {
          kind = Bcn { flow; fb = sigma; cpid = 1 };
          bits = control_frame_bits;
          born = e.clock;
          seq;
        }
    in
    if sigma < 0. then emit ()
    else if sigma > 0. && q < sw.q0 then begin
      (* positive_to_untagged = true, as in the runner's default *)
      ignore rrt;
      emit ()
    end
  and receive e pkt =
    let bits = float_of_int pkt.bits in
    if sw.occupancy +. bits <= sw.buffer_bits then begin
      Queue.push pkt sw.items;
      sw.occupancy <- sw.occupancy +. bits;
      sw.arrivals <- sw.arrivals + 1;
      if sw.arrivals >= sw.sample_every then begin
        sw.arrivals <- 0;
        match pkt.kind with
        | Data { flow; rrt } -> sample e ~flow ~rrt
        | Bcn _ | Pause _ -> ()
      end
    end;
    check_pause e;
    serve e
  in
  Array.iter
    (fun src ->
      let jitter =
        float_of_int data_frame_bits /. src.rate
        *. (float_of_int (src.id mod 97) /. 97.)
      in
      schedule e ~delay:jitter (pacing_loop src src.epoch))
    sources;
  (* same periodic trace sampler shape as the runner: record the queue
     and the per-flow rates into growable traces *)
  let n_samples = int_of_float (Float.ceil (t_end /. sample_dt)) + 1 in
  let qs = Array.make n_samples 0. in
  let aggs = Array.make n_samples 0. in
  let idx = ref 0 in
  let rec sampler e =
    if !idx < n_samples then begin
      qs.(!idx) <- sw.occupancy;
      let agg = ref 0. in
      Array.iter (fun src -> agg := !agg +. src.rate) sources;
      aggs.(!idx) <- !agg;
      incr idx
    end;
    if e.clock +. sample_dt <= t_end then schedule e ~delay:sample_dt sampler
  in
  schedule e ~delay:0. sampler;
  run_engine ~until:t_end e;
  { events = e.processed; frames = !frames; delivered_bits = sw.delivered }

(* Incast fan-in forwarding scenario on the seed stack: [nsrc] staggered
   constant-rate feeders push freshly-allocated immutable frames through
   one Queue-buffered switch that drops each frame after service. This
   is the boxed counterpart of the pooled fan-in scenario in
   [Simnet_bench]: identical event structure (one feed plus one service
   completion per frame), so events/sec here and there compare the
   implementation idiom, not the workload. Returns events processed. *)
let run_fanin ~nsrc ~frames (p : Fluid.Params.t) =
  let e = { clock = 0.; queue = Q.create (); processed = 0 } in
  let capacity = p.Fluid.Params.capacity in
  let buffer_bits = p.Fluid.Params.buffer in
  let items : packet Queue.t = Queue.create () in
  let occupancy = ref 0. in
  let busy = ref false in
  let rec serve e =
    if (not !busy) && not (Queue.is_empty items) then begin
      let pkt = Queue.pop items in
      occupancy := !occupancy -. float_of_int pkt.bits;
      busy := true;
      let tx = float_of_int pkt.bits /. capacity in
      schedule e ~delay:tx (fun e ->
          busy := false;
          ignore pkt.born;
          serve e)
    end
  in
  let receive e pkt =
    let bits = float_of_int pkt.bits in
    if !occupancy +. bits <= buffer_bits then begin
      Queue.push pkt items;
      occupancy := !occupancy +. bits
    end;
    serve e
  in
  (* aggregate offered load just above line rate, split across feeders *)
  let gap =
    1.05 *. float_of_int nsrc *. float_of_int data_frame_bits /. capacity
  in
  let seq = ref 0 in
  let rec feed e =
    let pkt =
      {
        kind = Data { flow = 0; rrt = None };
        bits = data_frame_bits;
        born = e.clock;
        seq = !seq;
      }
    in
    incr seq;
    receive e pkt;
    schedule e ~delay:gap feed
  in
  for i = 0 to nsrc - 1 do
    schedule e ~delay:(float_of_int i *. gap /. float_of_int nsrc) feed
  done;
  run_engine ~until:(float_of_int frames /. float_of_int nsrc *. gap) e;
  e.processed
