(* figures — regenerate every paper figure/table; prints the text
   reproductions and writes the data series as CSVs.

   Usage: figures [--out DIR] [ID ...]   (no IDs = all) *)

open Cmdliner

let run out ids =
  let all = Dcecc_core.Figures.all ~out () in
  let selected =
    match ids with
    | [] -> all
    | ids ->
        List.filter_map
          (fun id ->
            match List.assoc_opt id all with
            | Some text -> Some (id, text)
            | None ->
                Printf.eprintf "unknown figure id: %s\n" id;
                None)
          ids
  in
  List.iter
    (fun (id, text) ->
      Printf.printf "############ %s ############\n%s\n" id text)
    selected;
  Printf.printf "CSV data written to %s\n" out;
  if List.length selected = List.length ids || ids = [] then 0 else 1

let cmd =
  let out =
    Arg.(value & opt string "out" & info [ "out" ] ~docv:"DIR" ~doc:"CSV output directory.")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let doc =
    "Regenerate the figures and tables of 'Phase Plane Analysis of \
     Congestion Control in Data Center Ethernet Networks' (ICDCS 2010)."
  in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ out $ ids)

let () = exit (Cmd.eval' cmd)
