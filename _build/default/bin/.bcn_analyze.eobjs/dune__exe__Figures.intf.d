bin/figures.mli:
