bin/figures.ml: Arg Cmd Cmdliner Dcecc_core List Printf Term
