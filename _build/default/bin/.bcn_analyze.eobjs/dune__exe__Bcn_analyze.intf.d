bin/bcn_analyze.mli:
