bin/bcn_sim.ml: Arg Cmd Cmdliner Fluid Format Report Simnet Term
