bin/bcn_sweep.ml: Arg Cmd Cmdliner Fluid Format List Printf Report Term
