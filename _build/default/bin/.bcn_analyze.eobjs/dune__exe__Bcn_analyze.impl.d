bin/bcn_analyze.ml: Arg Cmd Cmdliner Dcecc_core Fluid Format Term
