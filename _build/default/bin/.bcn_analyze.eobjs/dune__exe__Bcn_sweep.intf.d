bin/bcn_sweep.mli:
