bin/bcn_sim.mli:
