(* bcn_analyze — phase-plane stability report for a BCN parameter set.

   Example:
     bcn_analyze --flows 50 --capacity 10e9 --q0 2.5e6 --buffer 5e6 \
                 --gi 4 --gd 0.0078125 --ru 8e6 --probe-limit-cycle *)

open Cmdliner

let params_term =
  let open Term in
  let flows =
    Arg.(value & opt int 50 & info [ "n"; "flows" ] ~docv:"N" ~doc:"Number of homogeneous flows.")
  in
  let capacity =
    Arg.(value & opt float 10e9 & info [ "c"; "capacity" ] ~docv:"BITS/S" ~doc:"Bottleneck capacity.")
  in
  let q0 =
    Arg.(value & opt float 2.5e6 & info [ "q0" ] ~docv:"BITS" ~doc:"Reference queue length.")
  in
  let buffer =
    Arg.(value & opt float 5e6 & info [ "b"; "buffer" ] ~docv:"BITS" ~doc:"Buffer size B.")
  in
  let gi = Arg.(value & opt float 4. & info [ "gi" ] ~doc:"Additive-increase gain Gi.") in
  let gd =
    Arg.(value & opt float (1. /. 128.) & info [ "gd" ] ~doc:"Multiplicative-decrease gain Gd.")
  in
  let ru = Arg.(value & opt float 8e6 & info [ "ru" ] ~docv:"BITS/S" ~doc:"Rate increase unit Ru.") in
  let w = Arg.(value & opt float 2. & info [ "w" ] ~doc:"Weight of the queue-variation term.") in
  let pm = Arg.(value & opt float 0.01 & info [ "pm" ] ~doc:"Sampling probability.") in
  let mu = Arg.(value & opt float 0. & info [ "mu" ] ~docv:"BITS/S" ~doc:"Initial per-source rate.") in
  let make n c q0 b gi gd ru w pm mu =
    Fluid.Params.make ~n_flows:n ~capacity:c ~q0 ~buffer:b ~gi ~gd ~ru ~w ~pm ~mu ()
  in
  const make $ flows $ capacity $ q0 $ buffer $ gi $ gd $ ru $ w $ pm $ mu

let analyze params probe =
  match params with
  | p ->
      let report = Dcecc_core.Analysis.run ~probe_limit_cycle:probe p in
      Format.printf "%a@." Dcecc_core.Analysis.pp report;
      if report.Dcecc_core.Analysis.stability.Fluid.Stability.strongly_stable
      then 0
      else 1

let cmd =
  let probe =
    Arg.(value & flag & info [ "probe-limit-cycle" ]
           ~doc:"Iterate the Poincare return map to look for limit cycles.")
  in
  let doc =
    "Phase-plane strong-stability analysis of a BCN congestion control \
     system (Ren & Jiang, ICDCS 2010). Exit status 1 when the system is \
     not strongly stable."
  in
  Cmd.v
    (Cmd.info "bcn_analyze" ~doc)
    Term.(const analyze $ params_term $ probe)

let () = exit (Cmd.eval' cmd)
