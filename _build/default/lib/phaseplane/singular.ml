open Numerics

type kind =
  | Stable_node
  | Unstable_node
  | Stable_focus
  | Unstable_focus
  | Saddle
  | Center
  | Degenerate_stable
  | Degenerate_unstable
  | Non_hyperbolic

let classify ?(eps = 1e-12) j =
  let scale =
    1.
    +. Float.abs j.Mat2.a11 +. Float.abs j.Mat2.a12 +. Float.abs j.Mat2.a21
    +. Float.abs j.Mat2.a22
  in
  let zero v = Float.abs v <= eps *. scale in
  match Mat2.eigenvalues j with
  | Mat2.Complex_pair { re; _ } ->
      if zero re then Center else if re < 0. then Stable_focus else Unstable_focus
  | Mat2.Real_pair (l1, l2) ->
      if zero l1 || zero l2 then Non_hyperbolic
      else if l1 < 0. && l2 < 0. then
        if zero (l1 -. l2) then Degenerate_stable else Stable_node
      else if l1 > 0. && l2 > 0. then
        if zero (l1 -. l2) then Degenerate_unstable else Unstable_node
      else Saddle

let is_attracting = function
  | Stable_node | Stable_focus | Degenerate_stable -> true
  | Unstable_node | Unstable_focus | Saddle | Center | Degenerate_unstable
  | Non_hyperbolic ->
      false

let to_string = function
  | Stable_node -> "stable node"
  | Unstable_node -> "unstable node"
  | Stable_focus -> "stable focus"
  | Unstable_focus -> "unstable focus"
  | Saddle -> "saddle"
  | Center -> "center"
  | Degenerate_stable -> "degenerate stable node"
  | Degenerate_unstable -> "degenerate unstable node"
  | Non_hyperbolic -> "non-hyperbolic"

let pp ppf k = Format.pp_print_string ppf (to_string k)

let eigen_summary j =
  match Mat2.eigenvalues j with
  | Mat2.Real_pair (l1, l2) ->
      Format.asprintf "l1 = %g, l2 = %g (%a)" l1 l2 pp (classify j)
  | Mat2.Complex_pair { re; im } ->
      Format.asprintf "l = %g +- %gi (%a)" re im pp (classify j)
