(** Classification of a planar equilibrium from the Jacobian.

    This is the standard trace–determinant taxonomy the paper leans on:
    Case 1 corresponds to {!Stable_focus} in both half-planes, Cases 2–4 to
    mixes of {!Stable_node} and {!Stable_focus}. *)

type kind =
  | Stable_node  (** two real negative eigenvalues *)
  | Unstable_node  (** two real positive eigenvalues *)
  | Stable_focus  (** complex pair, negative real part *)
  | Unstable_focus  (** complex pair, positive real part *)
  | Saddle  (** real eigenvalues of opposite sign *)
  | Center  (** purely imaginary pair *)
  | Degenerate_stable  (** repeated negative real eigenvalue *)
  | Degenerate_unstable  (** repeated positive real eigenvalue *)
  | Non_hyperbolic  (** at least one zero eigenvalue *)

val classify : ?eps:float -> Numerics.Mat2.t -> kind
(** [classify j] classifies the origin of [dp/dt = J·p]. [eps] (default
    [1e-12]) is the relative tolerance for treating eigenvalue real parts
    or discriminants as zero. *)

val is_attracting : kind -> bool
(** True for the three asymptotically stable kinds. *)

val to_string : kind -> string
val pp : Format.formatter -> kind -> unit

val eigen_summary : Numerics.Mat2.t -> string
(** Human-readable eigenvalue report, e.g. ["l = -0.5 ± 1.2i (stable focus)"]. *)
