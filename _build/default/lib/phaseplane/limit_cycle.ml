type verdict =
  | Converges_to_origin
  | Cycle of {
      s_star : float;
      period : float;
      multiplier : float option;
      stable : bool option;
    }
  | Diverges
  | Contracting of { ratio : float; s_last : float }
  | Expanding of { ratio : float; s_last : float }
  | Inconclusive of string

(* Geometric mean of the last few |s_{k+1}/s_k| ratios. *)
let trailing_ratio iterates =
  let arr = Array.of_list iterates in
  let n = Array.length arr in
  if n < 3 then None
  else begin
    let take = Stdlib.min 10 (n - 1) in
    let acc = ref 0. in
    let count = ref 0 in
    for i = n - take to n - 1 do
      let prev = arr.(i - 1) and cur = arr.(i) in
      if prev <> 0. && cur <> 0. then begin
        acc := !acc +. log (Float.abs (cur /. prev));
        incr count
      end
    done;
    if !count = 0 then None else Some (exp (!acc /. float_of_int !count))
  end

let detect ?solver ?t_max ?(max_iters = 200) ?origin_tol ?diverge_bound
    ?(settle_tol = 1e-7) ?(ratio_tol = 1e-4) sys sec ~s0 =
  let origin_tol =
    match origin_tol with Some v -> v | None -> 1e-6 *. Float.abs s0
  in
  let diverge_bound =
    match diverge_bound with Some v -> v | None -> 1e6 *. Float.abs s0
  in
  let rec go s i history =
    if i >= max_iters then begin
      match trailing_ratio (List.rev history) with
      | Some ratio when ratio < 1. -. ratio_tol ->
          Contracting { ratio; s_last = s }
      | Some ratio when ratio > 1. +. ratio_tol ->
          Expanding { ratio; s_last = s }
      | Some _ | None ->
          Inconclusive
            (Printf.sprintf
               "amplitude neutral after %d return-map iterations (possible \
                cycle near s = %g)"
               max_iters s)
    end
    else
      match Poincare.return_map ?solver ?t_max sys sec s with
      | None -> Inconclusive "trajectory stopped returning to the section"
      | Some r ->
          let s' = r.Poincare.s_next in
          if Float.abs s' <= origin_tol then Converges_to_origin
          else if Float.abs s' >= diverge_bound then Diverges
          else if Float.abs (s' -. s) <= settle_tol *. (1. +. Float.abs s')
          then begin
            let multiplier =
              Option.map Float.abs
                (Poincare.derivative ?solver ?t_max sys sec s')
            in
            let stable = Option.map (fun m -> m < 1.) multiplier in
            Cycle { s_star = s'; period = r.Poincare.time; multiplier; stable }
          end
          else go s' (i + 1) (s' :: history)
  in
  go s0 0 [ s0 ]

let amplitude_history ?solver ?t_max sys sec ~n ~s0 =
  Poincare.iterate ?solver ?t_max sys sec ~n s0
