(** Poincaré (first-return) maps on a linear section.

    For the BCN system the natural section is the switching line
    [x + k·y = 0]: the return map sends the k-th crossing into the
    rate-decrease region to the (k+1)-th. A fixed point of the return map
    away from the origin is a limit cycle (paper Fig. 7); the slope of the
    map at the fixed point decides the cycle's stability. *)

type section = {
  point_of : float -> Numerics.Vec2.t;
      (** embeds the section coordinate into the plane *)
  coord_of : Numerics.Vec2.t -> float;
      (** signed coordinate of a point on (or near) the section *)
  guard : Numerics.Vec2.t -> float;  (** zero exactly on the section *)
  sec_dir : Numerics.Ode.direction;
      (** which guard sign changes count as a return *)
}

val line_section :
  ?dir:Numerics.Ode.direction -> normal:Numerics.Vec2.t -> unit -> section
(** Section = the line through the origin with the given [normal]
    (so [guard p = normal·p]). The section coordinate is the signed
    position along the unit tangent [(-n.y, n.x)/|n|]. Default direction:
    [Both]. Raises [Invalid_argument] on a zero normal. *)

type return_ = { s_next : float; time : float; point : Numerics.Vec2.t }

val return_map :
  ?solver:Trajectory.solver ->
  ?t_max:float ->
  System.t ->
  section ->
  float ->
  return_ option
(** [return_map sys sec s] launches the trajectory from the section point
    with coordinate [s] and reports the next section crossing (in the
    section's direction, skipping the immediate departure). [None] when
    the trajectory does not return before [t_max] (default 1000). *)

val iterate :
  ?solver:Trajectory.solver ->
  ?t_max:float ->
  System.t ->
  section ->
  n:int ->
  float ->
  float list
(** Successive return-map iterates [s1; s2; …] (at most [n]), stopping
    early if the trajectory fails to return. *)

val fixed_points :
  ?solver:Trajectory.solver ->
  ?t_max:float ->
  ?exclude_origin:float ->
  System.t ->
  section ->
  s_min:float ->
  s_max:float ->
  n:int ->
  float list
(** Roots of [P(s) − s] found by scanning [n] subintervals of
    [[s_min, s_max]] and refining with Brent. Coordinates with
    [|s| < exclude_origin] (default [1e-9]) are dropped: the origin is
    always a trivial fixed point. *)

val derivative :
  ?solver:Trajectory.solver ->
  ?t_max:float ->
  ?ds:float ->
  System.t ->
  section ->
  float ->
  float option
(** Central-difference estimate of [dP/ds]; [None] if either probe fails
    to return. A cycle at a fixed point is orbitally stable when the
    absolute value of this derivative (the Floquet multiplier) is below 1. *)
