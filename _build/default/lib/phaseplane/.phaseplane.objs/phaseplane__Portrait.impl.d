lib/phaseplane/portrait.ml: Array Float List Numerics Roots System Trajectory Vec2
