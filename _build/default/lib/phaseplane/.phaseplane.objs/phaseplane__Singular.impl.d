lib/phaseplane/singular.ml: Float Format Mat2 Numerics
