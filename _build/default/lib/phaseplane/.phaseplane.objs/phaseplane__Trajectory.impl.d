lib/phaseplane/trajectory.ml: Array Float List Numerics Ode Series String System Vec2
