lib/phaseplane/system.ml: Array Float Mat2 Numerics Ode Vec2
