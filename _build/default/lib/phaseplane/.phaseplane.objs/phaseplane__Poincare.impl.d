lib/phaseplane/poincare.ml: Array Float List Numerics Ode Option Roots System Trajectory Vec2
