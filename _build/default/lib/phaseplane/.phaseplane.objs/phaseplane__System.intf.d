lib/phaseplane/system.mli: Numerics
