lib/phaseplane/limit_cycle.mli: Poincare System Trajectory
