lib/phaseplane/trajectory.mli: Numerics System
