lib/phaseplane/poincare.mli: Numerics System Trajectory
