lib/phaseplane/portrait.mli: Numerics System Trajectory
