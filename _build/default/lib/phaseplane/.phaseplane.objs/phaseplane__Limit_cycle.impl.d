lib/phaseplane/limit_cycle.ml: Array Float List Option Poincare Printf Stdlib
