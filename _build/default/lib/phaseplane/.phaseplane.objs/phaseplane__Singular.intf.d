lib/phaseplane/singular.mli: Format Numerics
