(** Limit-cycle detection via return-map iteration.

    Paper Fig. 7 shows a closed phase trajectory — a limit cycle — whose
    existence linear analysis cannot reveal. We detect it operationally:
    iterate the Poincaré map; if the iterates converge to a non-origin
    fixed point the orbit through it is a cycle; if they shrink to the
    origin the system converges; if they grow beyond a bound it diverges.
    When the iterate budget runs out first, the geometric trend of the
    amplitude sequence is reported instead: a per-return contraction
    ratio very close to 1 is the quasi-periodic regime in which BCN
    oscillates for thousands of rounds (the practically observed
    "oscillation" of ref. [4]'s experiments). *)

type verdict =
  | Converges_to_origin  (** return-map iterates shrink below tolerance *)
  | Cycle of {
      s_star : float;  (** section coordinate of the cycle *)
      period : float;  (** return time at the fixed point *)
      multiplier : float option;  (** |dP/ds| at the fixed point, if computable *)
      stable : bool option;  (** [multiplier < 1], when known *)
    }
  | Diverges  (** iterates exceed the divergence bound *)
  | Contracting of { ratio : float; s_last : float }
      (** iterate budget exhausted while amplitudes shrink geometrically
          with the given per-return ratio (< 1): slow convergence, no
          cycle *)
  | Expanding of { ratio : float; s_last : float }
      (** amplitudes grow (> 1) without reaching the divergence bound *)
  | Inconclusive of string  (** e.g. the trajectory stopped returning *)

val detect :
  ?solver:Trajectory.solver ->
  ?t_max:float ->
  ?max_iters:int ->
  ?origin_tol:float ->
  ?diverge_bound:float ->
  ?settle_tol:float ->
  ?ratio_tol:float ->
  System.t ->
  Poincare.section ->
  s0:float ->
  verdict
(** [detect sys sec ~s0] iterates the return map from [s0].
    [origin_tol] (default [1e-6]·|s0|): iterates below this are treated as
    convergence to the origin. [settle_tol] (default [1e-7] relative):
    consecutive iterates closer than this are treated as a fixed point.
    [diverge_bound] (default [1e6]·|s0|). [ratio_tol] (default [1e-4]):
    half-width of the neutral band around ratio 1 inside which the trend
    verdicts are not emitted and a fixed point is suspected instead. *)

val amplitude_history :
  ?solver:Trajectory.solver ->
  ?t_max:float ->
  System.t ->
  Poincare.section ->
  n:int ->
  s0:float ->
  float list
(** The raw iterate sequence (for plotting amplitude decay/growth). *)
