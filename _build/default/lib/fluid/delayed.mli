(** BCN fluid model with feedback delay — the extension the paper leaves
    to future work (§III.A assumes negligible propagation delay).

    The congestion point's measurement reaches the reaction point one
    round-trip late, so the rate laws act on delayed state:

    {v
      x'(t) = y(t)
      y'(t) = -a (x(t-tau) + k y(t-tau))                sigma_d > 0
      y'(t) = -b (y(t) + C) (x(t-tau) + k y(t-tau))     sigma_d < 0
    v}

    where [sigma_d = -(x(t-tau) + k·y(t-tau))] and the multiplicative
    factor [(y + C)] stays current (the decrease scales the rate the
    source actually has). Integrated by fixed-step RK4 over a dense
    history buffer with linear interpolation at the delayed instants
    (method of steps). With [tau = 0] this coincides with
    {!Model.normalized_system}; growing [tau] erodes the stability margin
    until the oscillation no longer contracts. *)

type result = {
  x : Numerics.Series.t;
  y : Numerics.Series.t;
  growth_per_cycle : float option;
      (** geometric mean ratio of successive |x| extrema after the first
          switching; > 1 means the delayed loop is unstable. [None] when
          fewer than three extrema were observed. *)
}

val simulate :
  ?h:float ->
  ?t_end:float ->
  ?x0:float ->
  ?y0:float ->
  tau:float ->
  Params.t ->
  result
(** Defaults: [x0 = -q0], [y0 = 0], [t_end] = 20 decrease-region periods,
    [h] = period/400. Raises [Invalid_argument] on negative [tau]. *)

val is_stable : ?h:float -> ?t_end:float -> tau:float -> Params.t -> bool
(** [growth_per_cycle < 1] (contracting); treats [None] as stable when
    the trajectory simply converged without oscillating. *)

val critical_delay :
  ?tau_max:float -> ?tol:float -> Params.t -> float option
(** Smallest delay at which the oscillation stops contracting, found by
    bisection on {!is_stable} over [[0, tau_max]] ([tau_max] defaults to
    one decrease-region period). [None] when the loop is still stable at
    [tau_max]. [tol] is the relative bisection tolerance (default 0.02). *)
