(** Closed-form trajectories of an overdamped (node) subsystem —
    paper §IV.B Case 2, eqns (21)–(28).

    The subsystem [x'' + m·x' + n·x = 0] with [m² − 4n > 0] has two
    distinct real negative eigenvalues [l1 < l2 < 0]; its trajectories are
    parabola-like curves with the eigenlines [y = l1·x] and [y = l2·x] as
    invariant manifolds, [y = l2·x] being the slow asymptote. *)

type coeffs = private { l1 : float; l2 : float }
(** [l1 < l2 < 0]. *)

val coeffs : m:float -> n:float -> coeffs
(** Raises [Invalid_argument] unless [m > 0], [n > 0], [m² − 4n > 0]. *)

val of_region : Params.t -> Linearized.region -> coeffs

val amplitudes : coeffs -> x0:float -> y0:float -> float * float
(** [(A1, A2)] of the solution
    [x t = A1·exp(l1·t) + A2·exp(l2·t)] (eqn (21)). *)

val solution : coeffs -> x0:float -> y0:float -> float -> float * float
(** [(x t, y t)] — eqn (21). *)

val on_eigenline : coeffs -> x0:float -> y0:float -> bool
(** Whether the initial point lies on one of the straight-line
    trajectories (24)/(25). *)

val invariant : coeffs -> x:float -> y:float -> float
(** The first integral behind eqn (26):
    [ln|y − l2·x|·l1 − ln|y − l1·x|·l2] — constant along trajectories off
    the eigenlines; used by the property tests. *)

val extremum_time : coeffs -> x0:float -> y0:float -> float option
(** Time of the single extremum of [x] ([y t = 0]), if it occurs at a
    positive time. *)

val extremum : coeffs -> x0:float -> y0:float -> float option
(** [x] at {!extremum_time} — the paper's [mump] (eqn (28)), evaluated
    exactly from the solution. *)

val extremum_paper : coeffs -> x0:float -> y0:float -> float
(** The literal right-hand side of eqn (28), kept for comparison tests.
    Uses absolute values inside the fractional powers, as the paper's
    expression implicitly requires. *)

val slow_slope : coeffs -> float
(** [l2] — slope of the asymptotic eigenline. *)

val fast_slope : coeffs -> float
(** [l1]. *)

val crossing_time :
  coeffs ->
  k:float ->
  dir:Crossing.direction ->
  ?t_min:float ->
  ?t_max:float ->
  x0:float ->
  y0:float ->
  unit ->
  float option
(** First crossing of [x + k·y = 0]; default scan horizon
    [t_max = 50 / abs l2] (several slow time constants). *)
