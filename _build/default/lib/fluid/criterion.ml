let ratio p = Params.a p /. (Params.b p *. p.Params.capacity)

let overshoot_bound p = sqrt (ratio p) *. p.Params.q0

let required_buffer p = (1. +. sqrt (ratio p)) *. p.Params.q0

let satisfied p = required_buffer p < p.Params.buffer

let margin p = p.Params.buffer -. required_buffer p

let q0_max p = p.Params.buffer /. (1. +. sqrt (ratio p))

let gi_max p =
  (* (1 + sqrt(Ru·Gi·N/(Gd·C)))·q0 < B  ⇔  Gi < Gd·C·(B/q0 − 1)²/(Ru·N) *)
  let slack = (p.Params.buffer /. p.Params.q0) -. 1. in
  if slack <= 0. then
    invalid_arg "Criterion.gi_max: q0 >= B, no gain can satisfy the criterion";
  p.Params.gd *. p.Params.capacity *. slack *. slack
  /. (p.Params.ru *. float_of_int p.Params.n_flows)

let gd_min p =
  let slack = (p.Params.buffer /. p.Params.q0) -. 1. in
  if slack <= 0. then
    invalid_arg "Criterion.gd_min: q0 >= B, no gain can satisfy the criterion";
  p.Params.ru *. p.Params.gi *. float_of_int p.Params.n_flows
  /. (p.Params.capacity *. slack *. slack)

let n_flows_max p =
  let slack = (p.Params.buffer /. p.Params.q0) -. 1. in
  if slack <= 0. then 0
  else begin
    let bound =
      p.Params.gd *. p.Params.capacity *. slack *. slack
      /. (p.Params.ru *. p.Params.gi)
    in
    (* strict inequality: step just inside *)
    let n = int_of_float (Float.floor bound) in
    if float_of_int n >= bound then n - 1 else n
  end

let buffer_for ?(headroom = 1.1) p =
  if headroom < 1. then invalid_arg "Criterion.buffer_for: headroom < 1";
  headroom *. required_buffer p

let startup_time p =
  let n = float_of_int p.Params.n_flows in
  (p.Params.capacity -. (n *. p.Params.mu))
  /. (n *. p.Params.ru *. p.Params.gi *. p.Params.q0)

let vs_bdp p ~rtt =
  if rtt <= 0. then invalid_arg "Criterion.vs_bdp: rtt <= 0";
  required_buffer p /. (p.Params.capacity *. rtt)
