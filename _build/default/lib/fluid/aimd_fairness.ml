type policy =
  | Aimd of { increase : float; decrease : float }
  | Aiad of { increase : float; decrease : float }

type point = { r1 : float; r2 : float }

let of_params ?(round = 1e-3) ?(excursion_frac = 0.1) p =
  if round <= 0. then invalid_arg "Aimd_fairness.of_params: round <= 0";
  let sigma = excursion_frac *. p.Params.q0 in
  Aimd
    {
      increase = p.Params.gi *. p.Params.ru *. sigma *. round;
      decrease = 1. -. exp (-.p.Params.gd *. sigma *. round);
    }

let step policy ~capacity pt =
  let congested = pt.r1 +. pt.r2 > capacity in
  let apply r =
    match policy with
    | Aimd { increase; decrease } ->
        if congested then r *. (1. -. decrease) else r +. increase
    | Aiad { increase; decrease } ->
        if congested then Float.max 0. (r -. decrease) else r +. increase
  in
  { r1 = apply pt.r1; r2 = apply pt.r2 }

let iterate policy ~capacity ~n pt =
  let rec go acc p i =
    if i >= n then List.rev acc
    else begin
      let p' = step policy ~capacity p in
      go (p' :: acc) p' (i + 1)
    end
  in
  go [] pt 0

let fairness_index pt =
  let s = pt.r1 +. pt.r2 in
  let s2 = (pt.r1 *. pt.r1) +. (pt.r2 *. pt.r2) in
  if s2 = 0. then 1. else s *. s /. (2. *. s2)

let converges_to_fairness ?(n = 500) ?(tol = 0.01) policy ~capacity pt =
  let rec go p i =
    if fairness_index p >= 1. -. tol then true
    else if i >= n then false
    else go (step policy ~capacity p) (i + 1)
  in
  go pt 0

let efficiency ~capacity pt = (pt.r1 +. pt.r2) /. capacity
