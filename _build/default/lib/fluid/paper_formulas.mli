(** Literal transcriptions of the paper's chained Case-1/Case-2
    expressions (§IV.C), kept verbatim so the reproduction can state
    exactly which printed formulas hold and which carry typos.

    The {!Flowmap} module evaluates the same quantities from first
    principles (closed-form subsystem solutions + root finding); this
    module evaluates the {e printed} formulas:

    - the warm-up/increase-phase constants [A1i], [phi1i] and the first
      switching time [T1i];
    - the first decrease-region entry point [x1d0] (on the switching
      line, so [y1d0 = −x1d0/k]);
    - [max1] — eqn (36), the Case-1 first overshoot;
    - [T1d] (printed as a full rotation period [2·pi/beta_d]), the
      re-entry point [x2i0] and [min1] — eqn (37);
    - [y1d0_case2] and [max2] — eqn (38), the Case-2 overshoot (evaluated
      in log space).

    The test suite compares each value against the flow map; see
    EXPERIMENTS.md for the verdicts. *)

type case1 = {
  a1i : float;  (** amplitude of the first increase-phase spiral *)
  phi1i : float;
  t1i : float;  (** time to the first switching-line crossing *)
  x1d0 : float;  (** x at entry into the decrease region *)
  y1d0 : float;  (** [= −x1d0/k] *)
  max1 : float;  (** eqn (36) *)
  t1d : float;  (** the paper's [2·pi/sqrt(4bC − (kbC)²)] *)
  x2i0 : float;  (** x at re-entry into the increase region *)
  min1 : float;  (** eqn (37) *)
}

val case1 : Params.t -> case1
(** Raises [Invalid_argument] unless the parameters are in Case 1. *)

val max2 : Params.t -> float
(** Eqn (38) for Case-2 parameters (node increase / spiral decrease);
    the eigen-ratio bracket is evaluated in log space.
    Raises [Invalid_argument] outside Case 2. *)

val theorem1_bound_chain : Params.t -> float * float
(** The two bounds used inside the Theorem-1 proof:
    [(max1 upper bound, min1 lower bound)] =
    [(sqrt(a/(bC))·q0, −q0)]. *)
