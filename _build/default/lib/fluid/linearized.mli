(** The linearized BCN subsystems (paper eqn (9)) and their spectra.

    Expanding the switched system (8) to first order at the equilibrium
    gives, per region, the LTI system [x' = y], [y' = −n·x − m·y] with
    [m = k·n] and [n = a] (increase region) or [n = b·C] (decrease
    region) — eqns (10)/(35). *)

type region = Increase | Decrease

val stiffness : Params.t -> region -> float
(** The coefficient [n] of the characteristic equation
    [l² + k·n·l + n = 0]. *)

val damping : Params.t -> region -> float
(** The coefficient [m = k·n]. *)

val jacobian : Params.t -> region -> Numerics.Mat2.t
(** Companion matrix [[0 1; −n −m]]. *)

val char_poly : Params.t -> region -> Numerics.Poly.t
val eigenvalues : Params.t -> region -> Numerics.Mat2.eigenvalues
val second_order : Params.t -> region -> Control.Lti2.t
val classify : Params.t -> region -> Phaseplane.Singular.kind

val discriminant : Params.t -> region -> float
(** [m² − 4n] — negative in a spiral region, positive in a node region. *)

val system : Params.t -> Phaseplane.System.t
(** The piecewise-linear system (9): both regions linearized, switching
    on [sigma = −(x + k·y)]. This is the object the paper's case-by-case
    closed forms describe; compare with {!Model.normalized_system}, which
    keeps the [(y + C)] nonlinearity of the decrease law. *)

val region_system : Params.t -> region -> Phaseplane.System.t
(** The single-region LTI system extended to the whole plane (used for
    Figs. 4–5, which show the unswitched trajectories). *)
