type candidate = {
  params : Params.t;
  required_buffer : float;
  margin : float;
  settling : float option;
  decay : float option;
  warmup : float;
}

type constraints = {
  max_warmup : float;
  headroom : float;
}

let default_constraints = { max_warmup = 1e-3; headroom = 1.1 }

let evaluate p =
  let t = Transient.measure p in
  {
    params = p;
    required_buffer = Criterion.required_buffer p;
    margin = Criterion.margin p;
    settling = t.Transient.settling_time;
    decay = t.Transient.decay_per_cycle;
    warmup = Criterion.startup_time p;
  }

let default_gi = [ 0.25; 0.5; 1.; 2.; 4. ]
let default_gd = [ 1. /. 256.; 1. /. 128.; 1. /. 64.; 1. /. 32.; 1. /. 16. ]

(* candidates ranked: settled beats unsettled; then shorter settling;
   then stronger decay *)
let better a b =
  match (a.settling, b.settling) with
  | Some ta, Some tb -> ta < tb
  | Some _, None -> true
  | None, Some _ -> false
  | None, None -> (
      match (a.decay, b.decay) with
      | Some da, Some db -> da < db
      | Some _, None -> true
      | None, Some _ | None, None -> false)

let feasible_set ?(constraints = default_constraints) ?(gi_grid = default_gi)
    ?(gd_grid = default_gd) ?q0_grid ~n_flows ~capacity ~buffer () =
  if buffer <= 0. then invalid_arg "Design.feasible_set: buffer <= 0";
  let q0_grid =
    match q0_grid with
    | Some g -> g
    | None -> [ buffer /. 10.; buffer /. 6.; buffer /. 4. ]
  in
  let candidates =
    List.concat_map
      (fun gi ->
        List.concat_map
          (fun gd ->
            List.filter_map
              (fun q0 ->
                let p =
                  Params.make ~n_flows ~capacity ~q0 ~buffer ~gi ~gd ~ru:8e6 ()
                in
                if
                  constraints.headroom *. Criterion.required_buffer p < buffer
                  && Criterion.startup_time p <= constraints.max_warmup
                then Some (evaluate p)
                else None)
              q0_grid)
          gd_grid)
      gi_grid
  in
  List.sort (fun a b -> if better a b then -1 else if better b a then 1 else 0)
    candidates

let recommend ?constraints ?gi_grid ?gd_grid ?q0_grid ~n_flows ~capacity
    ~buffer () =
  match
    feasible_set ?constraints ?gi_grid ?gd_grid ?q0_grid ~n_flows ~capacity
      ~buffer ()
  with
  | best :: _ -> Some best
  | [] -> None
