open Numerics

type region = Increase | Decrease

let stiffness p = function
  | Increase -> Params.a p
  | Decrease -> Params.b p *. p.Params.capacity

let damping p region = Params.k p *. stiffness p region

let jacobian p region =
  Mat2.make 0. 1. (-.stiffness p region) (-.damping p region)

let char_poly p region =
  Poly.make [| stiffness p region; damping p region; 1. |]

let eigenvalues p region = Mat2.eigenvalues (jacobian p region)

let second_order p region =
  Control.Lti2.make ~m:(damping p region) ~n:(stiffness p region)

let classify p region = Phaseplane.Singular.classify (jacobian p region)

let discriminant p region =
  let m = damping p region and n = stiffness p region in
  (m *. m) -. (4. *. n)

let system p =
  let k = Params.k p in
  let sw (v : Vec2.t) = -.(v.Vec2.x +. (k *. v.Vec2.y)) in
  Phaseplane.System.switched_linear ~sigma:sw ~pos:(jacobian p Increase)
    ~neg:(jacobian p Decrease)

let region_system p region = Phaseplane.System.linear (jacobian p region)
