(* Shared helper: first time a closed-form planar solution crosses the
   switching line x + k·y = 0, found by scanning for a sign change of
   g(t) = x(t) + k·y(t) and refining with Brent.

   Used by the piecewise closed-form flow map (Spiral / Node / Critical):
   each region's trajectory is known exactly, so locating the region exit
   reduces to scalar root finding on g. *)

type direction = Into_pos | Into_neg | Any
(* Into_pos: g goes from < 0 to > 0 (entering the region where
   x + k·y > 0, i.e. sigma < 0: the rate-DECREASE region).
   Into_neg: the opposite crossing. *)

let matches dir g_prev g_next =
  match dir with
  | Into_pos -> g_prev < 0. && g_next >= 0.
  | Into_neg -> g_prev > 0. && g_next <= 0.
  | Any -> g_prev *. g_next <= 0. && g_prev <> g_next

(* [first_crossing ~sol ~k ~dir ~t_min ~t_max ~dt] scans [t_min, t_max]
   with step [dt]. [sol t] must return (x t, y t). *)
let first_crossing ~sol ~k ~dir ~t_min ~t_max ~dt =
  if dt <= 0. then invalid_arg "Crossing.first_crossing: dt <= 0";
  let g t =
    let x, y = sol t in
    x +. (k *. y)
  in
  let rec scan t g_prev =
    if t >= t_max then None
    else begin
      let t' = Float.min (t +. dt) t_max in
      let g_next = g t' in
      if matches dir g_prev g_next then begin
        let root =
          if g_prev = 0. then t
          else
            try Numerics.Roots.brent ~tol:1e-14 g t t'
            with Numerics.Roots.No_bracket _ -> t'
        in
        Some root
      end
      else scan t' g_next
    end
  in
  scan t_min (g t_min)
