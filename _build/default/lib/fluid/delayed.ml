open Numerics

type result = {
  x : Series.t;
  y : Series.t;
  growth_per_cycle : float option;
}

let decrease_period p =
  2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Decrease)

(* Geometric-mean ratio of successive |x| extrema magnitudes (skipping the
   first, which is the launch transient). *)
let growth_of_extrema extrema =
  let mags =
    List.filter_map
      (fun (_, v, _) ->
        let m = Float.abs v in
        if m > 0. then Some m else None)
      extrema
  in
  match mags with
  | _ :: (_ :: _ :: _ as tail) ->
      let rec ratios acc = function
        | a :: (b :: _ as rest) -> ratios (log (b /. a) :: acc) rest
        | [ _ ] | [] -> acc
      in
      let rs = ratios [] tail in
      if rs = [] then None
      else
        Some (exp (List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)))
  | _ -> None

let simulate ?h ?t_end ?x0 ?y0 ~tau p =
  if tau < 0. then invalid_arg "Delayed.simulate: negative tau";
  let period = decrease_period p in
  let h = match h with Some v -> v | None -> period /. 400. in
  let t_end = match t_end with Some v -> v | None -> 20. *. period in
  let x0 = match x0 with Some v -> v | None -> -.p.Params.q0 in
  let y0 = match y0 with Some v -> v | None -> 0. in
  let a = Params.a p and b = Params.b p and k = Params.k p in
  let c = p.Params.capacity in
  let steps = int_of_float (Float.ceil (t_end /. h)) in
  let xs = Array.make (steps + 1) x0 in
  let ys = Array.make (steps + 1) y0 in
  (* linear interpolation into the recorded history; before t = 0 the
     system sat at the initial state *)
  let delayed filled t =
    let td = t -. tau in
    if td <= 0. then (x0, y0)
    else begin
      let fi = td /. h in
      let i0 = Stdlib.min filled (int_of_float (Float.floor fi)) in
      let i1 = Stdlib.min filled (i0 + 1) in
      let frac = fi -. float_of_int i0 in
      ( xs.(i0) +. (frac *. (xs.(i1) -. xs.(i0))),
        ys.(i0) +. (frac *. (ys.(i1) -. ys.(i0))) )
    end
  in
  (* one RK4 step; the delayed terms are frozen over the step at their
     midpoint value, which is second-order accurate and keeps the stage
     structure simple (h << tau regime) *)
  let step i =
    let t = float_of_int i *. h in
    let xd, yd = delayed i (t +. (h /. 2.)) in
    let g = xd +. (k *. yd) in
    let f (x, y) =
      ignore x;
      let dy = if -.g >= 0. then -.a *. g else -.b *. (y +. c) *. g in
      (y, dy)
    in
    let xv = xs.(i) and yv = ys.(i) in
    let k1x, k1y = f (xv, yv) in
    let k2x, k2y = f (xv +. (h /. 2. *. k1x), yv +. (h /. 2. *. k1y)) in
    let k3x, k3y = f (xv +. (h /. 2. *. k2x), yv +. (h /. 2. *. k2y)) in
    let k4x, k4y = f (xv +. (h *. k3x), yv +. (h *. k3y)) in
    xs.(i + 1) <- xv +. (h /. 6. *. (k1x +. (2. *. k2x) +. (2. *. k3x) +. k4x));
    ys.(i + 1) <- yv +. (h /. 6. *. (k1y +. (2. *. k2y) +. (2. *. k3y) +. k4y))
  in
  for i = 0 to steps - 1 do
    step i
  done;
  let ts = Array.init (steps + 1) (fun i -> float_of_int i *. h) in
  let x_series = Series.make ts xs in
  let y_series = Series.make ts ys in
  {
    x = x_series;
    y = y_series;
    growth_per_cycle = growth_of_extrema (Series.local_extrema x_series);
  }

let is_stable ?h ?t_end ~tau p =
  let r = simulate ?h ?t_end ~tau p in
  match r.growth_per_cycle with
  | Some g -> g < 1.
  | None ->
      (* no sustained oscillation: check the trajectory stayed bounded *)
      Float.abs (Stats.max r.x.Series.vs) < 100. *. p.Params.q0

let critical_delay ?tau_max ?(tol = 0.02) p =
  let tau_max =
    match tau_max with Some v -> v | None -> decrease_period p
  in
  if is_stable ~tau:tau_max p then None
  else begin
    let lo = ref 0. and hi = ref tau_max in
    while !hi -. !lo > tol *. tau_max do
      let mid = 0.5 *. (!lo +. !hi) in
      if is_stable ~tau:mid p then lo := mid else hi := mid
    done;
    Some (0.5 *. (!lo +. !hi))
  end
