(** The Chiu–Jain fairness argument the paper leans on (§II.B cites
    ref. [11] to justify AIMD: "proven to be stable, convergent and fair").

    Two synchronized flows receiving the same binary feedback follow the
    classic discrete dynamics on the [(r1, r2)] plane:

    - congestion ([r1 + r2 > C·u]): multiplicative decrease
      [r <- r·(1 − d)];
    - otherwise: additive increase [r <- r + i].

    Multiplicative decrease preserves the rate ratio's distance from the
    fairness line while additive increase moves toward it, so the
    trajectory zig-zags into the efficiency–fairness corner. This module
    makes the argument executable (and its converse: additive decrease
    does NOT converge to fairness), tying the paper's remark that a limit
    cycle "would impose a negative impact on the fairness" to the
    mechanism that produces fairness in the first place. *)

type policy =
  | Aimd of { increase : float; decrease : float }
      (** additive increase [bit/s], multiplicative decrease fraction *)
  | Aiad of { increase : float; decrease : float }
      (** additive increase and additive decrease — the non-converging
          strawman of Chiu–Jain *)

type point = { r1 : float; r2 : float }

val of_params : ?round:float -> ?excursion_frac:float -> Params.t -> policy
(** BCN's fluid rate laws (eqn (7)) aggregated over a feedback round of
    duration [round] (default 1 ms) at a representative sigma excursion of
    [excursion_frac]·q0 (default 0.1): additive increase
    [Gi·Ru·sigma·round], multiplicative-decrease fraction
    [1 − exp(−Gd·sigma·round)]. The literal per-message eqn (2) cannot be
    used directly here: with sigma in bits and Gd = 1/128 a single message
    already saturates the decrease — the draft quantizes Fb before
    applying it, which the fluid abstraction (and this mapping) absorbs
    into the time aggregation. *)

val step : policy -> capacity:float -> point -> point
(** One synchronized feedback round; rates floor at 0. *)

val iterate : policy -> capacity:float -> n:int -> point -> point list
(** The first [n] iterates (excluding the start). *)

val fairness_index : point -> float
(** Jain's index for two flows: [(r1+r2)² / (2(r1²+r2²))]. *)

val converges_to_fairness :
  ?n:int -> ?tol:float -> policy -> capacity:float -> point -> bool
(** Whether the index reaches [1 − tol] (default [tol = 0.01]) within [n]
    (default 500) rounds. *)

val efficiency : capacity:float -> point -> float
(** [(r1 + r2) / C]. *)
