(** Strong stability of the BCN system (paper Definition 1 and §IV.C).

    Definition 1: the queue system is {e strongly stable} when, after a
    finite transient, [0 < q(t) < B] — the buffer neither overflows
    (dropped frames) nor underflows (wasted link). In normalized
    coordinates, every excursion of [x = q − q0] must stay inside
    [(−q0, B − q0)] after the trajectory leaves its initial point.

    Two independent evaluations are provided:
    - {e semi-analytic}: the first overshoot/undershoot of the linearized
      switched system via the closed-form flow map (eqns (36)–(38));
    - {e numeric}: direct integration of the full nonlinear system (8),
      which keeps the [(y + C)] factor the paper linearizes away. *)

type verdict = {
  case : Cases.case;
  analytic_max : float option;
      (** [max¹x] (Case 1) / [max²x] (Case 2); [None] for Cases 3–5 *)
  analytic_min : float option;  (** [min¹x] (Case 1) *)
  numeric_max : float;  (** first-excursion max of the nonlinear system *)
  numeric_min : float;  (** first-excursion min *)
  overflow_margin : float;
      (** [B − q0 − numeric_max]: positive = no overflow *)
  underflow_margin : float;
      (** [numeric_min + q0]: positive = no underflow *)
  strongly_stable : bool;
      (** numeric verdict: both margins strictly positive *)
  analytic_strongly_stable : bool option;
      (** Propositions 2–4 evaluated with the semi-analytic extrema;
          [None] when the case needs extrema that do not exist *)
}

val first_excursion :
  ?t_max:float -> ?solver:Phaseplane.Trajectory.solver -> Params.t ->
  float * float
(** [(max x, min x)] over the first full oscillation of the nonlinear
    system (8) launched from [(−q0, 0)]: the max over the first
    decrease-region excursion and the min over the following
    increase-region excursion, measured after the first switching. The
    default horizon is 12 periods of the slower subsystem. *)

val analyze :
  ?t_max:float -> ?solver:Phaseplane.Trajectory.solver -> Params.t -> verdict

val proposition2 : Params.t -> bool option
(** Case-1 criterion: [max¹x < B − q0] and [min¹x > −q0].
    [None] when the parameters are not in Case 1. *)

val proposition3 : Params.t -> bool option
(** Case-2 criterion: [max²x < B − q0]. [None] outside Case 2. *)

val proposition4 : Params.t -> bool option
(** Cases 3–5: always strongly stable. [None] outside those cases. *)

val pp_verdict : Format.formatter -> verdict -> unit
