(** Parameter design: the paper's conclusion promises "straightforward
    guidelines for proper parameter settings"; this module turns
    Theorem 1 plus the transient metrics into a small design engine.

    Given the deployment facts (flow count, capacity, buffer), it searches
    the gain/reference grid for configurations that satisfy the criterion
    with headroom and ranks the feasible ones by transient quality
    (settling time, then per-cycle decay). The Remarks' trade-off — a
    small q0 favours stability but stretches the warm-up T0 — appears as
    an explicit constraint. *)

type candidate = {
  params : Params.t;
  required_buffer : float;
  margin : float;  (** B − required *)
  settling : float option;  (** from {!Transient.measure} *)
  decay : float option;
  warmup : float;  (** T0 *)
}

type constraints = {
  max_warmup : float;  (** reject configurations with T0 above this *)
  headroom : float;  (** required-buffer multiplier, e.g. 1.1 *)
}

val default_constraints : constraints
(** [max_warmup = 1 ms], [headroom = 1.1]. *)

val evaluate : Params.t -> candidate
(** Metrics for one configuration. *)

val recommend :
  ?constraints:constraints ->
  ?gi_grid:float list ->
  ?gd_grid:float list ->
  ?q0_grid:float list ->
  n_flows:int ->
  capacity:float ->
  buffer:float ->
  unit ->
  candidate option
(** Best feasible configuration over the grid (default grids: Gi in
    {0.25, 0.5, 1, 2, 4}, Gd in {1/256 … 1/16}, q0 in {B/10, B/6, B/4}),
    ranked by settling time (then decay). [None] when nothing on the grid
    satisfies both the criterion-with-headroom and the warm-up bound. *)

val feasible_set :
  ?constraints:constraints ->
  ?gi_grid:float list ->
  ?gd_grid:float list ->
  ?q0_grid:float list ->
  n_flows:int ->
  capacity:float ->
  buffer:float ->
  unit ->
  candidate list
(** All feasible grid points, best first. *)
