(** Theorem 1 — the explicit strong-stability criterion — and the
    parameter-engineering helpers derived from it (paper §IV.C Remarks).

    Theorem 1: the BCN system is strongly stable if

    {v (1 + sqrt (Ru·Gi·N / (Gd·C))) · q0 < B v}

    The left-hand side is the {e required buffer}; it scales with
    [sqrt (N/C)] and with [q0], and is independent of the sampling
    parameters [w] and [pm] (they only shape the transient). *)

val required_buffer : Params.t -> float
(** [(1 + sqrt(a/(b·C)))·q0]. *)

val satisfied : Params.t -> bool
(** [required_buffer p < B]. *)

val margin : Params.t -> float
(** [B − required_buffer] (positive when the criterion holds). *)

val overshoot_bound : Params.t -> float
(** The transient bound [sqrt(a/(b·C))·q0] on [max x] used in the proof;
    [max q(t)] is below [q0 + overshoot_bound]. *)

val q0_max : Params.t -> float
(** Largest reference queue passing the criterion for the current gains
    and buffer: [B / (1 + sqrt(a/(b·C)))]. *)

val gi_max : Params.t -> float
(** Largest additive-increase gain passing the criterion, all else fixed.
    Raises [Invalid_argument] if even [Gi → 0] cannot satisfy it
    (i.e. [q0 >= B]). *)

val gd_min : Params.t -> float
(** Smallest multiplicative-decrease gain passing the criterion. *)

val n_flows_max : Params.t -> int
(** Largest homogeneous flow count passing the criterion (at least 0). *)

val buffer_for : ?headroom:float -> Params.t -> float
(** Buffer that satisfies the criterion with a multiplicative [headroom]
    (default 1.1). *)

val startup_time : Params.t -> float
(** [T0 = (C − N·mu)/(N·Ru·Gi·q0)] — the warm-up duration that a small
    [q0] prolongs (the Remarks' trade-off). *)

val vs_bdp : Params.t -> rtt:float -> float
(** Ratio of the required buffer to the bandwidth-delay product [C·rtt] —
    the paper's headline "nearly three times the BDP" for the worked
    example. (The paper quotes a 5 Mbit BDP for C = 10 Gb/s, i.e. an
    effective delay of 0.5 ms; its "0.5 us" is an evident unit slip,
    noted in DESIGN.md.) *)
