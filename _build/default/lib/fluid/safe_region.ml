type verdict = Safe | Overflow | Underflow

type raster = {
  q_grid : float array;
  r_grid : float array;
  cells : verdict array array;
  safe_fraction : float;
}

let slower_period p =
  Float.max
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Increase))
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Decrease))

let classify ?t_max p ~q ~r =
  if q < 0. || q > p.Params.buffer then
    invalid_arg "Safe_region.classify: q outside [0, B]";
  if r < 0. then invalid_arg "Safe_region.classify: r < 0";
  let t_end = match t_max with Some t -> t | None -> 12. *. slower_period p in
  let h = Float.min 1e-6 (slower_period p /. 500.) in
  let ph = Model.simulate_physical ~h ~q_init:q ~r_init:r ~t_end p in
  if ph.Model.dropped_bits > 0. then Overflow
  else if ph.Model.idle_time > 0. then Underflow
  else Safe

let raster ?t_max ?(nq = 24) ?(nr = 24) ?r_max p =
  if nq < 2 || nr < 2 then invalid_arg "Safe_region.raster: grid too small";
  let r_max =
    match r_max with Some v -> v | None -> 2. *. Params.equilibrium_rate p
  in
  (* keep cell centers strictly inside the walls *)
  let q_grid =
    Array.init nq (fun i ->
        p.Params.buffer *. (float_of_int i +. 0.5) /. float_of_int nq)
  in
  let r_grid =
    Array.init nr (fun j ->
        r_max *. (float_of_int j +. 0.5) /. float_of_int nr)
  in
  let cells =
    Array.map
      (fun q -> Array.map (fun r -> classify ?t_max p ~q ~r) r_grid)
      q_grid
  in
  let safe = ref 0 in
  Array.iter
    (Array.iter (fun v -> if v = Safe then incr safe))
    cells;
  {
    q_grid;
    r_grid;
    cells;
    safe_fraction = float_of_int !safe /. float_of_int (nq * nr);
  }

let glyph = function Safe -> '.' | Overflow -> '#' | Underflow -> 'o'

let render ra =
  let nq = Array.length ra.q_grid and nr = Array.length ra.r_grid in
  let buf = Buffer.create ((nq + 16) * (nr + 4)) in
  Buffer.add_string buf
    (Printf.sprintf
       "strong-stability basin ('.' safe, '#' overflow, 'o' underflow); \
        safe fraction = %.2f\n"
       ra.safe_fraction);
  Buffer.add_string buf "r (bit/s)\n";
  for j = nr - 1 downto 0 do
    let label =
      if j = nr - 1 || j = 0 then
        Printf.sprintf "%8s |" (Report.Table.si ra.r_grid.(j))
      else Printf.sprintf "%8s |" ""
    in
    Buffer.add_string buf label;
    for i = 0 to nq - 1 do
      Buffer.add_char buf (glyph ra.cells.(i).(j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make nq '-'));
  Buffer.add_string buf
    (Printf.sprintf "%8s  q: 0 .. %s (buffer)\n" "" (Report.Table.si (ra.q_grid.(nq - 1) *. float_of_int nq /. (float_of_int nq -. 0.5))));
  Buffer.contents buf

and to_csv ~path ra =
  let rows = ref [] in
  Array.iteri
    (fun i q ->
      Array.iteri
        (fun j r ->
          let v =
            match ra.cells.(i).(j) with
            | Safe -> 0.
            | Overflow -> 1.
            | Underflow -> -1.
          in
          rows := [ q; r; v ] :: !rows)
        ra.r_grid;
      ignore q)
    ra.q_grid;
  Report.Csv.write_floats ~path ~header:[ "q"; "r"; "verdict" ]
    (List.rev !rows)
