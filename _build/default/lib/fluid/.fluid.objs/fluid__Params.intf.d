lib/fluid/params.mli: Control Format
