lib/fluid/node.mli: Crossing Linearized Params
