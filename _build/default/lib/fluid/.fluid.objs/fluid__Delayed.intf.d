lib/fluid/delayed.mli: Numerics Params
