lib/fluid/spiral.ml: Crossing Float Linearized
