lib/fluid/flowmap.ml: Cases Critical Crossing Float Linearized List Mat2 Model Node Numerics Params Spiral Stdlib Vec2
