lib/fluid/safe_region.mli: Params
