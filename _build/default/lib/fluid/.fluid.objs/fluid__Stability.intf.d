lib/fluid/stability.mli: Cases Format Params Phaseplane
