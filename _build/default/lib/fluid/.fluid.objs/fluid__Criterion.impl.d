lib/fluid/criterion.ml: Float Params
