lib/fluid/design.mli: Params
