lib/fluid/delayed.ml: Array Float Linearized List Numerics Params Series Stats Stdlib
