lib/fluid/transient.mli: Format Params
