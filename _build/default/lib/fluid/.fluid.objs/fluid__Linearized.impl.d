lib/fluid/linearized.ml: Control Mat2 Numerics Params Phaseplane Poly Vec2
