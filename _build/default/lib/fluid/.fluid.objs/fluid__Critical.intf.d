lib/fluid/critical.mli: Crossing
