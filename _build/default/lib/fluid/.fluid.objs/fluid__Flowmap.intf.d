lib/fluid/flowmap.mli: Linearized Numerics Params
