lib/fluid/paper_formulas.ml: Cases Float Params
