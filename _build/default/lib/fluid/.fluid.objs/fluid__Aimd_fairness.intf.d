lib/fluid/aimd_fairness.mli: Params
