lib/fluid/params.ml: Control Format
