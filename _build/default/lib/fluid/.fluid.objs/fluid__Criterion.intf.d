lib/fluid/criterion.mli: Params
