lib/fluid/crossing.ml: Float Numerics
