lib/fluid/model.mli: Numerics Params Phaseplane
