lib/fluid/cases.mli: Format Linearized Params
