lib/fluid/spiral.mli: Crossing Linearized Params
