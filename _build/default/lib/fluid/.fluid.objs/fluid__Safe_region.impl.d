lib/fluid/safe_region.ml: Array Buffer Float Linearized List Model Params Printf Report String
