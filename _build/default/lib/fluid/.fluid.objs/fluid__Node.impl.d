lib/fluid/node.ml: Crossing Float Linearized Option
