lib/fluid/critical.ml: Crossing Float Option
