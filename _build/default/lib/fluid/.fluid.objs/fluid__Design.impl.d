lib/fluid/design.ml: Criterion List Params Transient
