lib/fluid/linearized.mli: Control Numerics Params Phaseplane
