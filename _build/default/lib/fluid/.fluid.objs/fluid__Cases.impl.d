lib/fluid/cases.ml: Float Format Linearized Node Params
