lib/fluid/model.ml: Array Float Numerics Ode Params Phaseplane Series Vec2
