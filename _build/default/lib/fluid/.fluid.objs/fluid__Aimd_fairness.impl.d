lib/fluid/aimd_fairness.ml: Float List Params
