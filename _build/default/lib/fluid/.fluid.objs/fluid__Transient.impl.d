lib/fluid/transient.ml: Array Float Format Linearized List Model Numerics Params Phaseplane Printf Series Vec2
