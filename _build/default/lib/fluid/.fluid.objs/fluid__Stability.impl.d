lib/fluid/stability.ml: Cases Float Flowmap Format Linearized Mat2 Model Node Numerics Params Phaseplane Series Spiral
