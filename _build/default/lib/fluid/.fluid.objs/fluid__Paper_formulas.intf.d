lib/fluid/paper_formulas.mli: Params
