type case1 = {
  a1i : float;
  phi1i : float;
  t1i : float;
  x1d0 : float;
  y1d0 : float;
  max1 : float;
  t1d : float;
  x2i0 : float;
  min1 : float;
}

let require_case p expected name =
  if Cases.classify p <> expected then
    invalid_arg ("Paper_formulas." ^ name ^ ": parameters not in the right case")

let case1 p =
  require_case p Cases.Case1 "case1";
  let a = Params.a p and b = Params.b p and k = Params.k p in
  let c = p.Params.capacity and q0 = p.Params.q0 in
  (* increase-region spiral quantities *)
  let disc_i = (4. *. a) -. (a *. a *. k *. k) in
  let root_i = sqrt disc_i in
  let alpha_i = -.a *. k /. 2. and beta_i = root_i /. 2. in
  (* decrease-region spiral quantities *)
  let disc_d = (4. *. b *. c) -. ((k *. b *. c) ** 2.) in
  let root_d = sqrt disc_d in
  let alpha_d = -.b *. k *. c /. 2. and beta_d = root_d /. 2. in
  (* chain of §IV.C Case 1, transcribed *)
  let a1i = 2. *. q0 *. sqrt a /. root_i in
  let phi1i = -.atan (a *. k /. root_i) in
  let t1i = 2. /. root_i *. (atan ((2. -. (a *. k *. k)) /. (k *. root_i)) -. phi1i) in
  let x1d0 = -.k *. a1i *. root_i /. 2. *. exp (-.a *. k /. 2. *. t1i) in
  let y1d0 = -.x1d0 /. k in
  let phi1d = atan ((2. -. (b *. k *. k *. c)) /. (k *. root_d)) in
  let ratio_d = alpha_d /. beta_d in
  let max1 =
    Float.abs x1d0 /. (k *. sqrt (b *. c))
    *. exp (ratio_d *. (Float.pi +. atan ratio_d -. phi1d))
  in
  let t1d = 2. *. Float.pi /. root_d in
  let a1d = 2. *. Float.abs y1d0 /. root_d in
  let x2i0 = -.a1d *. k *. root_d /. 2. *. exp (-.b *. k *. c /. 2. *. t1d) in
  let phi2i = atan ((2. -. (a *. k *. k)) /. (k *. root_i)) in
  let ratio_i = alpha_i /. beta_i in
  let min1 =
    -.(Float.abs x2i0 /. (k *. sqrt a))
    *. exp (ratio_i *. (Float.pi +. atan ratio_i -. phi2i))
  in
  { a1i; phi1i; t1i; x1d0; y1d0; max1; t1d; x2i0; min1 }

let max2 p =
  require_case p Cases.Case2 "max2";
  let a = Params.a p and b = Params.b p and k = Params.k p in
  let c = p.Params.capacity and q0 = p.Params.q0 in
  (* node eigenvalues of the increase region *)
  let disc = (a *. a *. k *. k) -. (4. *. a) in
  let s = sqrt disc in
  let l1 = ((-.k *. a) -. s) /. 2. and l2 = ((-.k *. a) +. s) /. 2. in
  (* y1d0 = q0 [ (k+1/l1)^l1 / (k+1/l2)^l2 ]^(1/(l2-l1)), log space;
     both (k + 1/l) factors are positive because l < -1/k *)
  let u = k +. (1. /. l1) and v = k +. (1. /. l2) in
  let log_bracket = ((l1 *. log u) -. (l2 *. log v)) /. (l2 -. l1) in
  let y1d0 = q0 *. exp log_bracket in
  ignore y1d0;
  (* eqn (38) folds that bracket directly into the overshoot *)
  let disc_d = (4. *. b *. c) -. ((k *. b *. c) ** 2.) in
  let root_d = sqrt disc_d in
  let alpha_d = -.b *. k *. c /. 2. and beta_d = root_d /. 2. in
  let phi1d = atan ((2. -. (b *. k *. k *. c)) /. (k *. root_d)) in
  let ratio_d = alpha_d /. beta_d in
  q0 /. sqrt (b *. c) *. exp log_bracket
  *. exp (ratio_d *. (Float.pi +. atan ratio_d -. phi1d))

let theorem1_bound_chain p =
  let a = Params.a p and b = Params.b p in
  let c = p.Params.capacity and q0 = p.Params.q0 in
  (sqrt (a /. (b *. c)) *. q0, -.q0)
