(** Closed-form trajectories of an underdamped (spiral) subsystem —
    paper §IV.B Case 1, eqns (12)–(20).

    The subsystem [x'' + m·x' + n·x = 0] with [m² − 4n < 0] has complex
    eigenvalues [alpha ± i·beta]; its trajectories are logarithmic spirals
    around a stable focus. *)

type coeffs = private {
  alpha : float;  (** real part, [−m/2 < 0] *)
  beta : float;  (** imaginary part, [sqrt(4n − m²)/2 > 0] *)
}

val coeffs : m:float -> n:float -> coeffs
(** Raises [Invalid_argument] unless [m > 0], [n > 0] and [m² − 4n < 0]. *)

val of_region : Params.t -> Linearized.region -> coeffs
(** Convenience constructor from the BCN parameters; raises if the region
    is not a spiral (check {!Linearized.discriminant} first). *)

val amplitude_phase : coeffs -> x0:float -> y0:float -> float * float
(** [(A, phi)] of the solution [x t = A·exp(alpha·t)·cos(beta·t + phi)]
    (eqn (12)), with [phi] computed by [atan2] so all quadrants are
    handled. *)

val solution : coeffs -> x0:float -> y0:float -> float -> float * float
(** [(x t, y t)] — eqn (12). *)

val polar : coeffs -> x0:float -> y0:float -> float -> float * float
(** [(r t, theta t)] — the logarithmic-spiral form, eqn (17):
    [r = sqrt c1 · exp((alpha/beta)·theta)], [theta = beta·t + phi]. *)

val t_star : coeffs -> x0:float -> y0:float -> float
(** Time of the {e next} local extremum of [x] (the smallest positive
    solution of [y t = 0]) — eqn (18). When [y0 = 0] (already at an
    extremum) the following extremum, half a period later, is returned. *)

val extremum : coeffs -> x0:float -> y0:float -> float
(** [x(t_star)] — the first overshoot ([y0 > 0], eqn (19)) or undershoot
    ([y0 < 0], eqn (20)) of [x], evaluated exactly. *)

val extremum_paper : coeffs -> x0:float -> y0:float -> float
(** The paper's literal expressions (19)/(20)
    [± A·beta/sqrt(alpha² + beta²) · exp(alpha·t_star)], kept separate so
    the test suite can confirm they agree with {!extremum}. *)

val period : coeffs -> float
(** Full rotation period [2·pi/beta]. *)

val contraction_per_turn : coeffs -> float
(** Radius contraction over one full turn, [exp(2·pi·alpha/beta)] — always
    < 1 for a stable focus. *)

val crossing_time :
  coeffs ->
  k:float ->
  dir:Crossing.direction ->
  ?t_min:float ->
  ?t_max:float ->
  x0:float ->
  y0:float ->
  unit ->
  float option
(** First time the spiral trajectory crosses the switching line
    [x + k·y = 0] in the given direction. Default scan range: from
    [t_min = 0] to [t_max] = two periods. *)
