type shape = Spiral_shape | Node_shape | Critical_shape

type case = Case1 | Case2 | Case3 | Case4 | Case5

let shape_of ?(eps = 1e-9) p region =
  let m = Linearized.damping p region and n = Linearized.stiffness p region in
  let disc = (m *. m) -. (4. *. n) in
  if Float.abs disc <= eps *. (4. *. n) then Critical_shape
  else if disc < 0. then Spiral_shape
  else Node_shape

let classify ?eps p =
  match (shape_of ?eps p Linearized.Increase, shape_of ?eps p Linearized.Decrease) with
  | Critical_shape, _ | _, Critical_shape -> Case5
  | Spiral_shape, Spiral_shape -> Case1
  | Node_shape, Spiral_shape -> Case2
  | Spiral_shape, Node_shape -> Case3
  | Node_shape, Node_shape -> Case4

let strongly_stable_unconditionally = function
  | Case3 | Case4 | Case5 -> true
  | Case1 | Case2 -> false

let eigen_slope_bound p region =
  match shape_of p region with
  | Spiral_shape | Critical_shape -> true
  | Node_shape ->
      let c = Node.of_region p region in
      let bound = -1. /. Params.k p in
      Node.fast_slope c < bound && Node.slow_slope c < bound

let describe = function
  | Case1 ->
      "Case 1: spiral in both regions (a < 4pm^2C^2/w^2, b < 4pm^2C/w^2); \
       oscillatory convergence, limit cycles possible"
  | Case2 ->
      "Case 2: node in the increase region, spiral in the decrease region \
       (a > 4pm^2C^2/w^2, b < 4pm^2C/w^2); single overshoot"
  | Case3 ->
      "Case 3: spiral in the increase region, node in the decrease region \
       (a < 4pm^2C^2/w^2, b > 4pm^2C/w^2); no overshoot of q0"
  | Case4 ->
      "Case 4: node in both regions (a > 4pm^2C^2/w^2, b > 4pm^2C/w^2); \
       monotone approach"
  | Case5 ->
      "Case 5: a boundary equality holds (repeated eigenvalue -2/k in one \
       region; note: the paper misprints it as -1/k, see EXPERIMENTS.md)"

let pp_case ppf c =
  Format.pp_print_string ppf
    (match c with
    | Case1 -> "Case 1 (spiral/spiral)"
    | Case2 -> "Case 2 (node/spiral)"
    | Case3 -> "Case 3 (spiral/node)"
    | Case4 -> "Case 4 (node/node)"
    | Case5 -> "Case 5 (critical boundary)")

let pp_shape ppf s =
  Format.pp_print_string ppf
    (match s with
    | Spiral_shape -> "spiral"
    | Node_shape -> "node"
    | Critical_shape -> "critical")
