(** The paper's case taxonomy (§IV.C).

    With [k = w/(pm·C)], the increase subsystem is a spiral iff
    [a < 4·pm²·C²/w² = 4/k²] and the decrease subsystem is a spiral iff
    [b < 4·pm²·C/w² = 4/(k²·C)]. The paper's six basic phase-trajectory
    types collapse into five analysis cases. *)

type shape =
  | Spiral_shape  (** discriminant < 0: logarithmic spiral (Fig. 4) *)
  | Node_shape  (** discriminant > 0: parabola-like node (Fig. 5) *)
  | Critical_shape  (** repeated eigenvalue: boundary *)

type case =
  | Case1  (** spiral / spiral — oscillatory, limit cycles possible (Fig. 6/7) *)
  | Case2  (** node in I-region, spiral in D-region (Fig. 8) *)
  | Case3  (** spiral in I-region, node in D-region (Fig. 9) *)
  | Case4  (** node / node (Fig. 10) *)
  | Case5
      (** a boundary equality holds (repeated eigenvalue in one region).
          NOTE: the paper justifies this case by claiming the switching
          line is itself a trajectory with [lambda = -1/k]; in fact
          [-1/k] is never a root of eqn (35) — the repeated eigenvalue at
          the boundary is [-2/k] (see EXPERIMENTS.md erratum 7). The
          strong-stability conclusion still holds by continuity. *)

val shape_of : ?eps:float -> Params.t -> Linearized.region -> shape
(** [eps] (default 1e-9) is the relative tolerance on the discriminant for
    declaring the critical boundary. *)

val classify : ?eps:float -> Params.t -> case

val strongly_stable_unconditionally : case -> bool
(** True for Cases 3–5 (paper Propositions 4): no parameter constraint
    beyond the case membership is needed. *)

val eigen_slope_bound : Params.t -> Linearized.region -> bool
(** The paper's observation below eqn (35): in a node region both
    eigenvalues satisfy [l < −1/k], so node trajectories must cross the
    switching line in the second quadrant. Returns true when the bound
    holds (vacuously true for spiral regions). *)

val describe : case -> string
val pp_case : Format.formatter -> case -> unit
val pp_shape : Format.formatter -> shape -> unit
