(** Closed-form trajectories of a critically damped subsystem —
    paper §IV.B Case 3, eqns (29)–(34).

    The boundary case [m² = 4n]: a repeated real eigenvalue
    [l = −m/2 < 0]; trajectories are node-like with a single invariant
    straight line [y = l·x]. In the BCN system this occurs exactly on the
    Case-5 parameter boundary [a = 4·pm²·C²/w²] or [b = 4·pm²·C/w²]. *)

type coeffs = private { l : float }

val coeffs : m:float -> n:float -> coeffs
(** Raises [Invalid_argument] unless [m > 0], [n > 0] and [m² = 4n]
    within a relative tolerance of 1e-9. *)

val of_eigen : float -> coeffs
(** Directly from the repeated eigenvalue ([l < 0] required). *)

val constants : coeffs -> x0:float -> y0:float -> float * float
(** [(A3, A4)] of the solution [x t = (A3 + A4·t)·exp(l·t)] (eqn (29)):
    [A3 = x0], [A4 = y0 − l·x0]. *)

val solution : coeffs -> x0:float -> y0:float -> float -> float * float
(** [(x t, y t)] — eqn (29). *)

val on_eigenline : coeffs -> x0:float -> y0:float -> bool
(** Whether the start lies on the straight-line trajectory (31). *)

val extremum_time : coeffs -> x0:float -> y0:float -> float option
(** Positive root of [y t = 0]: [t* = −(A3·l + A4)/(A4·l)] when
    [A4 <> 0]. *)

val extremum : coeffs -> x0:float -> y0:float -> float option
(** [x] at the extremum: [(−A4/l)·exp(−(l·A3 + A4)/A4)].
    Note: the paper's eqn (34) prints the exponent as
    [−(l·A3 + A4)/(l·A4)]; substituting [t*] into (29) gives
    [l·t* = −(l·A3 + A4)/A4] — the extra [1/l] is a typo, which the
    test suite confirms numerically (see DESIGN.md errata). *)

val extremum_paper : coeffs -> x0:float -> y0:float -> float option
(** The literal eqn (34), kept to document the typo. *)

val crossing_time :
  coeffs ->
  k:float ->
  dir:Crossing.direction ->
  ?t_min:float ->
  ?t_max:float ->
  x0:float ->
  y0:float ->
  unit ->
  float option
