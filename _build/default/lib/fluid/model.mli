(** The BCN fluid-flow model (paper §III).

    Two views of the same dynamics:

    - the {e normalized} switched system in [(x, y)] coordinates
      ([x = q − q0], [y = N·r − C]), eqn (8) — the object of the
      phase-plane analysis; it ignores the buffer walls;
    - the {e physical} simulation in [(q, r)] coordinates, eqns (4)/(7),
      with the buffer clamps [0 <= q <= B] applied, drop accounting at the
      full-buffer wall and the empty-queue behaviour that produces the
      warm-up phase of §IV.C. *)

val sigma : Params.t -> x:float -> y:float -> float
(** The feedback variable on normalized coordinates:
    [sigma = −(x + k·y)] (eqn (6)). Positive means rate increase. *)

val sigma_physical : Params.t -> q:float -> dq:float -> float
(** Eqn (1) with eqn (5): [sigma = (q0 − q) − (w/(pm·C))·dq]. *)

val to_xy : Params.t -> q:float -> r:float -> Numerics.Vec2.t
(** [(x, y) = (q − q0, N·r − C)]. *)

val of_xy : Params.t -> Numerics.Vec2.t -> float * float
(** Inverse of {!to_xy}: [(q, r)]. *)

val normalized_system : Params.t -> Phaseplane.System.t
(** Eqn (8): [x' = y]; [y' = −a(x + ky)] in the increase region,
    [y' = −b(y + C)(x + ky)] in the decrease region. The switching
    function is [sigma]. *)

val start_point : Params.t -> Numerics.Vec2.t
(** [(−q0, 0)] — the canonical initial point of §IV.C (end of warm-up). *)

val cold_start_point : Params.t -> Numerics.Vec2.t
(** [(−q0, N·mu − C)] — empty queue, sources at their initial rate. *)

(** Result of a physical (buffer-clamped) fluid simulation. *)
type phys = {
  q : Numerics.Series.t;  (** queue length, bits *)
  r : Numerics.Series.t;  (** per-source rate, bit/s *)
  sigma_t : Numerics.Series.t;  (** feedback variable over time *)
  dropped_bits : float;  (** fluid volume lost at the full-buffer wall *)
  idle_time : float;
      (** time the queue spent empty with the link under-utilized, after
          the initial warm-up has first filled the queue *)
  warmup_end : float;  (** first time the queue becomes positive *)
}

val simulate_physical :
  ?h:float ->
  ?q_init:float ->
  ?r_init:float ->
  t_end:float ->
  Params.t ->
  phys
(** Fixed-step (RK4, default [h = 1e-6] s) integration of the clamped
    physical model from [(q_init, r_init)] (defaults: empty queue, rate
    [mu]). The clamp keeps [0 <= q <= B]; fluid arriving beyond [B] is
    counted in [dropped_bits]; time with [q = 0] and [N·r < C] after the
    queue has first filled counts toward [idle_time]. *)

val warmup_duration : Params.t -> float
(** [T0 = (C − N·mu)/(a·q0)] — the duration of the initial acceleration
    along [x = −q0] (paper §IV.C). Raises [Invalid_argument] when
    [N·mu >= C] (no warm-up needed). *)
