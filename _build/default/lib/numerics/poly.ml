type t = float array
type root = Real of float | Complex of { re : float; im : float }

let make coeffs =
  let n = Array.length coeffs in
  let rec top i = if i > 0 && coeffs.(i) = 0. then top (i - 1) else i in
  if n = 0 then [| 0. |] else Array.sub coeffs 0 (top (n - 1) + 1)

let degree p = Array.length p - 1

let eval p x =
  let acc = ref 0. in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_complex p (re, im) =
  let ar = ref 0. and ai = ref 0. in
  for i = Array.length p - 1 downto 0 do
    let nr = (!ar *. re) -. (!ai *. im) +. p.(i) in
    let ni = (!ar *. im) +. (!ai *. re) in
    ar := nr;
    ai := ni
  done;
  (!ar, !ai)

let derivative p =
  let n = degree p in
  if n = 0 then [| 0. |]
  else Array.init n (fun i -> float_of_int (i + 1) *. p.(i + 1))

let add p q =
  let n = max (Array.length p) (Array.length q) in
  let get a i = if i < Array.length a then a.(i) else 0. in
  make (Array.init n (fun i -> get p i +. get q i))

let scale s p = make (Array.map (fun c -> s *. c) p)
let sub p q = add p (scale (-1.) q)

let mul p q =
  let n = Array.length p + Array.length q - 1 in
  let r = Array.make n 0. in
  Array.iteri
    (fun i pi -> Array.iteri (fun j qj -> r.(i + j) <- r.(i + j) +. (pi *. qj)) q)
    p;
  make r

let of_roots rs =
  List.fold_left (fun acc r -> mul acc [| -.r; 1. |]) [| 1. |] rs

let roots_linear p =
  if degree p <> 1 then invalid_arg "Poly.roots_linear: degree <> 1";
  -.p.(0) /. p.(1)

let roots_quadratic p =
  if degree p <> 2 then invalid_arg "Poly.roots_quadratic: degree <> 2";
  let a = p.(2) and b = p.(1) and c = p.(0) in
  let disc = (b *. b) -. (4. *. a *. c) in
  if disc >= 0. then begin
    (* q = −(b + sign(b)·sqrt(disc))/2 avoids cancellation *)
    let s = sqrt disc in
    let q = if b >= 0. then -.(b +. s) /. 2. else -.(b -. s) /. 2. in
    if q = 0. then (Real 0., Real 0.)
    else begin
      let r1 = q /. a and r2 = c /. q in
      if r1 <= r2 then (Real r1, Real r2) else (Real r2, Real r1)
    end
  end
  else begin
    let re = -.b /. (2. *. a) and im = sqrt (-.disc) /. (2. *. a) in
    let im = Float.abs im in
    (Complex { re; im = -.im }, Complex { re; im })
  end

let roots_cubic p =
  if degree p <> 3 then invalid_arg "Poly.roots_cubic: degree <> 3";
  (* Normalize to x^3 + a2 x^2 + a1 x + a0, then depress: x = u − a2/3 *)
  let a2 = p.(2) /. p.(3) and a1 = p.(1) /. p.(3) and a0 = p.(0) /. p.(3) in
  let shift = a2 /. 3. in
  let q = a1 -. (a2 *. a2 /. 3.) in
  let r = (2. *. a2 *. a2 *. a2 /. 27.) -. (a2 *. a1 /. 3.) +. a0 in
  (* u^3 + q u + r = 0 *)
  let disc = (r *. r /. 4.) +. (q *. q *. q /. 27.) in
  if disc > 0. then begin
    let s = sqrt disc in
    let cbrt v = if v >= 0. then v ** (1. /. 3.) else -.((-.v) ** (1. /. 3.)) in
    let u = cbrt ((-.r /. 2.) +. s) +. cbrt ((-.r /. 2.) -. s) in
    let real_root = u -. shift in
    (* Deflate: remaining quadratic x^2 + (a2 + x0) x + ... via synthetic division *)
    let b1 = a2 +. real_root in
    let b0 = a1 +. (real_root *. b1) in
    let r1, r2 = roots_quadratic [| b0; b1; 1. |] in
    [ Real real_root; r1; r2 ]
  end
  else begin
    (* three real roots: trigonometric method *)
    if q = 0. && r = 0. then
      [ Real (-.shift); Real (-.shift); Real (-.shift) ]
    else begin
      let m = 2. *. sqrt (-.q /. 3.) in
      let arg = 3. *. r /. (q *. m) in
      let arg = Float.max (-1.) (Float.min 1. arg) in
      let theta = acos arg /. 3. in
      let root k =
        (m *. cos (theta -. (2. *. Float.pi *. float_of_int k /. 3.))) -. shift
      in
      List.sort compare [ Real (root 0); Real (root 1); Real (root 2) ]
    end
  end

let roots ?(max_iter = 500) ?(tol = 1e-12) p =
  let n = degree p in
  if n < 1 then invalid_arg "Poly.roots: degree < 1"
  else if n = 1 then [ Real (roots_linear p) ]
  else if n = 2 then
    let r1, r2 = roots_quadratic p in
    [ r1; r2 ]
  else if n = 3 then roots_cubic p
  else begin
    (* Durand–Kerner on the monic normalization *)
    let monic = Array.map (fun c -> c /. p.(n)) p in
    let csub (a, b) (c, d) = (a -. c, b -. d) in
    let cmul (a, b) (c, d) = ((a *. c) -. (b *. d), (a *. d) +. (b *. c)) in
    let cdiv (a, b) (c, d) =
      let den = (c *. c) +. (d *. d) in
      (((a *. c) +. (b *. d)) /. den, ((b *. c) -. (a *. d)) /. den)
    in
    let cnorm (a, b) = sqrt ((a *. a) +. (b *. b)) in
    (* initial guesses on a circle of non-trivial radius, not a root of unity *)
    let zs =
      Array.init n (fun i ->
          let angle = (2. *. Float.pi *. float_of_int i /. float_of_int n) +. 0.4 in
          (0.4 +. (0.9 *. cos angle), 0.4 +. (0.9 *. sin angle)))
    in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let delta = ref 0. in
      for i = 0 to n - 1 do
        let zi = zs.(i) in
        let num = eval_complex monic zi in
        let den = ref (1., 0.) in
        for j = 0 to n - 1 do
          if j <> i then den := cmul !den (csub zi zs.(j))
        done;
        let corr = cdiv num !den in
        zs.(i) <- csub zi corr;
        delta := Float.max !delta (cnorm corr)
      done;
      if !delta < tol then converged := true
    done;
    (* classify near-real roots *)
    let scale_ref =
      Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 1. monic
    in
    let real_tol = 1e-8 *. scale_ref in
    Array.to_list zs
    |> List.map (fun (re, im) ->
           if Float.abs im <= real_tol then Real re else Complex { re; im })
    |> List.sort compare
  end

let is_hurwitz p =
  roots p
  |> List.for_all (function
       | Real r -> r < 0.
       | Complex { re; _ } -> re < 0.)

let pp ppf p =
  let n = degree p in
  let first = ref true in
  for i = n downto 0 do
    if p.(i) <> 0. || (n = 0 && i = 0) then begin
      if not !first then Format.fprintf ppf " + ";
      first := false;
      if i = 0 then Format.fprintf ppf "%g" p.(i)
      else if i = 1 then Format.fprintf ppf "%g·x" p.(i)
      else Format.fprintf ppf "%g·x^%d" p.(i) i
    end
  done;
  if !first then Format.fprintf ppf "0"

let pp_root ppf = function
  | Real r -> Format.fprintf ppf "%g" r
  | Complex { re; im } -> Format.fprintf ppf "%g%+gi" re im
