(** Scalar root finding.

    Used throughout the phase-plane machinery: localizing switching-line
    crossings in time, inverting the spiral solution
    [t = H⁻¹{x,y | x0,y0}] (paper eqn (12)), and solving Theorem-1 parameter
    constraints for a single unknown. *)

exception No_bracket of string
(** Raised when a bracketing interval with a sign change cannot be found. *)

(** [bisect ?tol ?max_iter f a b] finds a root of [f] in [[a,b]].
    Requires [f a] and [f b] to have opposite signs (or one of them to be
    zero). [tol] bounds the interval width at return.
    Raises [No_bracket] if the endpoints do not bracket a root. *)
val bisect : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float

(** [brent ?tol ?max_iter f a b] — Brent's method: inverse quadratic
    interpolation safeguarded by bisection. Same contract as {!bisect} but
    converges superlinearly on smooth functions. *)
val brent : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float

(** [newton ?tol ?max_iter f f' x0] — Newton iteration from [x0].
    Raises [Failure] on derivative blow-up or non-convergence. *)
val newton : ?tol:float -> ?max_iter:int -> (float -> float) -> (float -> float) -> float -> float

(** [secant ?tol ?max_iter f x0 x1] — secant iteration.
    Raises [Failure] on non-convergence. *)
val secant : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float

(** [bracket ?grow ?max_iter f a b] expands [[a,b]] geometrically until
    [f] changes sign over it; returns the bracketing interval.
    Raises [No_bracket] on failure. *)
val bracket : ?grow:float -> ?max_iter:int -> (float -> float) -> float -> float -> float * float

(** [find_all ?n f a b] scans [[a,b]] with [n] subintervals and returns one
    refined root (via {!brent}) per sign change, in increasing order. *)
val find_all : ?n:int -> (float -> float) -> float -> float -> float list

(** [fixed_point ?tol ?max_iter g x0] iterates [x ← g x] to a fixed point.
    Raises [Failure] on non-convergence. *)
val fixed_point : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float
