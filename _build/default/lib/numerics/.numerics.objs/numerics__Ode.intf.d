lib/numerics/ode.mli:
