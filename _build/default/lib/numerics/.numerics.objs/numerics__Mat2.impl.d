lib/numerics/mat2.ml: Float Format Vec2
