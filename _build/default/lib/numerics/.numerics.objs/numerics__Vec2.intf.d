lib/numerics/vec2.mli: Format
