lib/numerics/poly.ml: Array Float Format List
