lib/numerics/quad.mli:
