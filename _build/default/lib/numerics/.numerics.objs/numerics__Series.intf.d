lib/numerics/series.mli: Format
