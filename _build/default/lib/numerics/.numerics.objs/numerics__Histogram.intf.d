lib/numerics/histogram.mli: Series
