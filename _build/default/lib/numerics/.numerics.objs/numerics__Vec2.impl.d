lib/numerics/vec2.ml: Array Float Format
