lib/numerics/series.ml: Array Format Interp List Quad
