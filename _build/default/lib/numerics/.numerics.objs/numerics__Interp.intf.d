lib/numerics/interp.mli:
