lib/numerics/roots.mli:
