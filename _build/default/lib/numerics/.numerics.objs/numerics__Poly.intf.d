lib/numerics/poly.mli: Format
