lib/numerics/stats.mli:
