lib/numerics/mat2.mli: Format Vec2
