lib/numerics/histogram.ml: Array Series Stdlib
