(** Real polynomials with dense coefficient representation.

    A polynomial [p] is stored as a coefficient array with [p.(i)] the
    coefficient of [x^i]. The characteristic equations of the BCN
    subsystems (eqns (10)/(35) in the paper) and the Routh–Hurwitz baseline
    both operate on such polynomials. *)

type t = float array

(** A root of a real polynomial. *)
type root = Real of float | Complex of { re : float; im : float }

(** [make coeffs] normalizes by dropping trailing (highest-degree) zero
    coefficients. The zero polynomial is represented as [[|0.|]]. *)
val make : float array -> t

val degree : t -> int
val eval : t -> float -> float

(** Horner evaluation at a complex point, returning [(re, im)]. *)
val eval_complex : t -> float * float -> float * float

val derivative : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

(** [of_roots rs] is the monic polynomial with the given real roots. *)
val of_roots : float list -> t

(** Roots of a degree-1 polynomial. Raises [Invalid_argument] otherwise. *)
val roots_linear : t -> float

(** Roots of a degree-2 polynomial, numerically stable (avoids
    catastrophic cancellation). Raises [Invalid_argument] otherwise. *)
val roots_quadratic : t -> root * root

(** Roots of a degree-3 polynomial via the trigonometric/Cardano method.
    Raises [Invalid_argument] otherwise. *)
val roots_cubic : t -> root list

(** All roots of a polynomial of any degree ≥ 1 via the Durand–Kerner
    (Weierstrass) iteration; real roots are reported as [Real] when the
    imaginary part is below an absolute tolerance. *)
val roots : ?max_iter:int -> ?tol:float -> t -> root list

(** [is_hurwitz p] holds when all roots have strictly negative real part
    (checked by computing the roots; see {!Routh} in [lib/control] for the
    algebraic criterion). *)
val is_hurwitz : t -> bool

val pp : Format.formatter -> t -> unit
val pp_root : Format.formatter -> root -> unit
