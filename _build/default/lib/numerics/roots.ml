exception No_bracket of string

let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if fa *. fb > 0. then
    raise (No_bracket (Printf.sprintf "bisect: f(%g)=%g, f(%g)=%g" a fa b fb))
  else begin
    let lo = ref (Float.min a b) and hi = ref (Float.max a b) in
    let flo = ref (if a <= b then fa else fb) in
    let i = ref 0 in
    while !hi -. !lo > tol && !i < max_iter do
      incr i;
      let mid = 0.5 *. (!lo +. !hi) in
      let fm = f mid in
      if fm = 0. then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fm < 0. then hi := mid
      else begin
        lo := mid;
        flo := fm
      end
    done;
    0.5 *. (!lo +. !hi)
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if fa *. fb > 0. then
    raise (No_bracket (Printf.sprintf "brent: f(%g)=%g, f(%g)=%g" a fa b fb))
  else begin
    (* classic Brent: a is the contrapoint, b the best iterate *)
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and mflag = ref true in
    let iter = ref 0 in
    while !fb <> 0. && Float.abs (!b -. !a) > tol && !iter < max_iter do
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* inverse quadratic interpolation *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo = ((3. *. !a) +. !b) /. 4. and hi = !b in
      let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
      let use_bisect =
        s < lo || s > hi
        || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
        || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.)
        || (!mflag && Float.abs (!b -. !c) < tol)
        || ((not !mflag) && Float.abs (!c -. !d) < tol)
      in
      let s = if use_bisect then (!a +. !b) /. 2. else s in
      mflag := use_bisect;
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0. then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end
    done;
    !b
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) f f' x0 =
  let x = ref x0 in
  let converged = ref false in
  let i = ref 0 in
  while (not !converged) && !i < max_iter do
    incr i;
    let fx = f !x in
    let dfx = f' !x in
    if Float.abs dfx < 1e-300 then failwith "Roots.newton: zero derivative";
    let step = fx /. dfx in
    x := !x -. step;
    if Float.abs step <= tol *. (1. +. Float.abs !x) then converged := true
  done;
  if not !converged then failwith "Roots.newton: no convergence";
  !x

let secant ?(tol = 1e-12) ?(max_iter = 100) f x0 x1 =
  let xa = ref x0 and xb = ref x1 in
  let fa = ref (f x0) and fb = ref (f x1) in
  let converged = ref (!fb = 0.) in
  let i = ref 0 in
  while (not !converged) && !i < max_iter do
    incr i;
    if !fb = !fa then failwith "Roots.secant: flat function";
    let xn = !xb -. (!fb *. (!xb -. !xa) /. (!fb -. !fa)) in
    xa := !xb;
    fa := !fb;
    xb := xn;
    fb := f xn;
    if Float.abs (!xb -. !xa) <= tol *. (1. +. Float.abs !xb) || !fb = 0. then
      converged := true
  done;
  if not !converged then failwith "Roots.secant: no convergence";
  !xb

let bracket ?(grow = 1.6) ?(max_iter = 60) f a b =
  if a = b then invalid_arg "Roots.bracket: empty interval";
  let a = ref a and b = ref b in
  let fa = ref (f !a) and fb = ref (f !b) in
  let i = ref 0 in
  let found = ref (!fa *. !fb <= 0.) in
  while (not !found) && !i < max_iter do
    incr i;
    if Float.abs !fa < Float.abs !fb then begin
      a := !a +. (grow *. (!a -. !b));
      fa := f !a
    end
    else begin
      b := !b +. (grow *. (!b -. !a));
      fb := f !b
    end;
    if !fa *. !fb <= 0. then found := true
  done;
  if not !found then raise (No_bracket "bracket: no sign change found");
  if !a <= !b then (!a, !b) else (!b, !a)

let find_all ?(n = 200) f a b =
  if n < 1 then invalid_arg "Roots.find_all: n < 1";
  let h = (b -. a) /. float_of_int n in
  let acc = ref [] in
  let prev_x = ref a and prev_f = ref (f a) in
  for i = 1 to n do
    let x = a +. (h *. float_of_int i) in
    let fx = f x in
    if !prev_f = 0. then acc := !prev_x :: !acc
    else if !prev_f *. fx < 0. then acc := brent f !prev_x x :: !acc;
    prev_x := x;
    prev_f := fx
  done;
  if !prev_f = 0. then acc := !prev_x :: !acc;
  List.rev !acc

let fixed_point ?(tol = 1e-12) ?(max_iter = 1000) g x0 =
  let x = ref x0 in
  let converged = ref false in
  let i = ref 0 in
  while (not !converged) && !i < max_iter do
    incr i;
    let xn = g !x in
    if Float.abs (xn -. !x) <= tol *. (1. +. Float.abs xn) then converged := true;
    x := xn
  done;
  if not !converged then failwith "Roots.fixed_point: no convergence";
  !x
