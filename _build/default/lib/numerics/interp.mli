(** Interpolation of sampled functions. *)

(** [linear xs ys x] — piecewise-linear interpolation on the sorted knots
    [xs]. Clamps outside the knot range. Raises [Invalid_argument] on
    length mismatch or empty input. *)
val linear : float array -> float array -> float -> float

(** [hermite x0 x1 y0 y1 d0 d1 x] — cubic Hermite interpolation on
    [[x0,x1]] with endpoint values [y0,y1] and derivatives [d0,d1]. *)
val hermite : float -> float -> float -> float -> float -> float -> float -> float

(** [resample xs ys n] — [n] equally spaced samples of the piecewise-linear
    interpolant over the knot range, returned as [(xs', ys')]. *)
val resample : float array -> float array -> int -> float array * float array

(** [zero_crossings xs ys] — abscissae where the piecewise-linear
    interpolant crosses zero, in increasing order. *)
val zero_crossings : float array -> float array -> float list
