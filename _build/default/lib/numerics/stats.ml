let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  check_nonempty "Stats.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  check_nonempty "Stats.min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check_nonempty "Stats.max" xs;
  Array.fold_left Float.max xs.(0) xs

let rms xs =
  check_nonempty "Stats.rms" xs;
  let acc = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
  sqrt (acc /. float_of_int (Array.length xs))

let percentile p xs =
  check_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile 50. xs

let mean_ci95 xs =
  check_nonempty "Stats.mean_ci95" xs;
  let n = float_of_int (Array.length xs) in
  let m = mean xs in
  let half = 1.96 *. stddev xs /. sqrt n in
  (m, half)

let check_same_len name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch")

let rmse a b =
  check_same_len "Stats.rmse" a b;
  check_nonempty "Stats.rmse" a;
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) *. (x -. b.(i)))) a;
  sqrt (!acc /. float_of_int (Array.length a))

let max_abs_err a b =
  check_same_len "Stats.max_abs_err" a b;
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := Float.max !acc (Float.abs (x -. b.(i)))) a;
  !acc

let corr a b =
  check_same_len "Stats.corr" a b;
  check_nonempty "Stats.corr" a;
  let ma = mean a and mb = mean b in
  let num = ref 0. and da = ref 0. and db = ref 0. in
  Array.iteri
    (fun i x ->
      let u = x -. ma and v = b.(i) -. mb in
      num := !num +. (u *. v);
      da := !da +. (u *. u);
      db := !db +. (v *. v))
    a;
  if !da = 0. || !db = 0. then 0. else !num /. sqrt (!da *. !db)
