type t = { x : float; y : float }

let make x y = { x; y }
let zero = { x = 0.; y = 0. }
let add u v = { x = u.x +. v.x; y = u.y +. v.y }
let sub u v = { x = u.x -. v.x; y = u.y -. v.y }
let scale s v = { x = s *. v.x; y = s *. v.y }
let neg v = { x = -.v.x; y = -.v.y }
let dot u v = (u.x *. v.x) +. (u.y *. v.y)
let cross u v = (u.x *. v.y) -. (u.y *. v.x)
let norm2 v = dot v v
let norm v = sqrt (norm2 v)
let dist u v = norm (sub u v)

let normalize v =
  let n = norm v in
  if n = 0. then invalid_arg "Vec2.normalize: zero vector";
  scale (1. /. n) v

let rotate theta v =
  let c = cos theta and s = sin theta in
  { x = (c *. v.x) -. (s *. v.y); y = (s *. v.x) +. (c *. v.y) }

let lerp a b s = add (scale (1. -. s) a) (scale s b)
let angle v = atan2 v.y v.x

let equal ?(eps = 1e-12) u v =
  Float.abs (u.x -. v.x) <= eps && Float.abs (u.y -. v.y) <= eps

let pp ppf v = Format.fprintf ppf "(%g, %g)" v.x v.y
let to_string v = Format.asprintf "%a" pp v

let of_array a =
  if Array.length a < 2 then invalid_arg "Vec2.of_array: need length >= 2";
  { x = a.(0); y = a.(1) }

let to_array v = [| v.x; v.y |]
