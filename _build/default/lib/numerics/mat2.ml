type t = { a11 : float; a12 : float; a21 : float; a22 : float }

type eigenvalues =
  | Real_pair of float * float
  | Complex_pair of { re : float; im : float }

let make a11 a12 a21 a22 = { a11; a12; a21; a22 }
let identity = make 1. 0. 0. 1.
let zero = make 0. 0. 0. 0.

let of_rows (r1 : Vec2.t) (r2 : Vec2.t) = make r1.Vec2.x r1.Vec2.y r2.Vec2.x r2.Vec2.y
let row1 m = Vec2.make m.a11 m.a12
let row2 m = Vec2.make m.a21 m.a22

let add a b =
  make (a.a11 +. b.a11) (a.a12 +. b.a12) (a.a21 +. b.a21) (a.a22 +. b.a22)

let sub a b =
  make (a.a11 -. b.a11) (a.a12 -. b.a12) (a.a21 -. b.a21) (a.a22 -. b.a22)

let scale s m = make (s *. m.a11) (s *. m.a12) (s *. m.a21) (s *. m.a22)

let mul a b =
  make
    ((a.a11 *. b.a11) +. (a.a12 *. b.a21))
    ((a.a11 *. b.a12) +. (a.a12 *. b.a22))
    ((a.a21 *. b.a11) +. (a.a22 *. b.a21))
    ((a.a21 *. b.a12) +. (a.a22 *. b.a22))

let transpose m = make m.a11 m.a21 m.a12 m.a22

let apply m (v : Vec2.t) =
  Vec2.make ((m.a11 *. v.Vec2.x) +. (m.a12 *. v.Vec2.y))
    ((m.a21 *. v.Vec2.x) +. (m.a22 *. v.Vec2.y))

let det m = (m.a11 *. m.a22) -. (m.a12 *. m.a21)
let trace m = m.a11 +. m.a22

let inv m =
  let d = det m in
  if d = 0. then failwith "Mat2.inv: singular matrix";
  scale (1. /. d) (make m.a22 (-.m.a12) (-.m.a21) m.a11)

let discriminant m =
  let tr = trace m in
  (tr *. tr) -. (4. *. det m)

let eigenvalues m =
  let tr = trace m in
  let disc = discriminant m in
  if disc >= 0. then begin
    let s = sqrt disc in
    let l1 = (tr -. s) /. 2. and l2 = (tr +. s) /. 2. in
    Real_pair (l1, l2)
  end
  else Complex_pair { re = tr /. 2.; im = sqrt (-.disc) /. 2. }

let eigenvector m l =
  (* Rows of (A − l·I) are orthogonal to the eigenvector; pick the row with
     the larger norm for numerical robustness. *)
  let b11 = m.a11 -. l and b22 = m.a22 -. l in
  let r1 = Vec2.make b11 m.a12 and r2 = Vec2.make m.a21 b22 in
  let n1 = Vec2.norm r1 and n2 = Vec2.norm r2 in
  let scale_ref = 1. +. Float.abs m.a11 +. Float.abs m.a12
                  +. Float.abs m.a21 +. Float.abs m.a22 in
  if n1 <= 1e-12 *. scale_ref && n2 <= 1e-12 *. scale_ref then Vec2.make 1. 0.
  else begin
    let r = if n1 >= n2 then r1 else r2 in
    (* eigenvector is perpendicular to r *)
    let v = Vec2.make (-.r.Vec2.y) r.Vec2.x in
    (* Sanity check: A·v ≈ l·v *)
    let av = apply m v in
    let residual = Vec2.dist av (Vec2.scale l v) in
    if residual > 1e-6 *. scale_ref *. Vec2.norm v then
      failwith "Mat2.eigenvector: not an eigenvalue";
    v
  end

let char_poly m = (det m, -.trace m)

let equal ?(eps = 1e-12) a b =
  let close u v = Float.abs (u -. v) <= eps in
  close a.a11 b.a11 && close a.a12 b.a12 && close a.a21 b.a21
  && close a.a22 b.a22

let pp ppf m =
  Format.fprintf ppf "[[%g, %g]; [%g, %g]]" m.a11 m.a12 m.a21 m.a22
