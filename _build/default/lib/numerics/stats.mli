(** Descriptive statistics over [float array]s.

    Used by the packet-level simulator's measurement pipeline (queue
    occupancy, throughput, drop counts) and by the fluid-vs-packet
    comparison metrics. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased (n−1) sample variance; 0 for arrays of length < 2. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float
val sum : float array -> float
val rms : float array -> float

(** [percentile p xs] with [p] in [0,100]; linear interpolation between
    order statistics. Raises [Invalid_argument] on empty input or [p]
    out of range. *)
val percentile : float -> float array -> float

val median : float array -> float

(** [mean_ci95 xs] — sample mean and the half-width of a normal-theory 95%
    confidence interval. *)
val mean_ci95 : float array -> float * float

(** [rmse a b] — root-mean-square error between equal-length arrays. *)
val rmse : float array -> float array -> float

(** [max_abs_err a b] — maximum absolute componentwise difference. *)
val max_abs_err : float array -> float array -> float

(** [corr a b] — Pearson correlation; 0 when either side is constant. *)
val corr : float array -> float array -> float
