let trapezoid f a b n =
  if n < 1 then invalid_arg "Quad.trapezoid: n < 1";
  let h = (b -. a) /. float_of_int n in
  let acc = ref ((f a +. f b) /. 2.) in
  for i = 1 to n - 1 do
    acc := !acc +. f (a +. (h *. float_of_int i))
  done;
  !acc *. h

let simpson f a b n =
  let n = if n mod 2 = 0 then n else n + 1 in
  if n < 2 then invalid_arg "Quad.simpson: n < 2";
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f (a +. (h *. float_of_int i)))
  done;
  !acc *. h /. 3.

let adaptive_simpson ?(tol = 1e-10) f a b =
  let simpson1 a b fa fm fb = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a b fa fm fb whole tol depth =
    let m = (a +. b) /. 2. in
    let lm = (a +. m) /. 2. and rm = (m +. b) /. 2. in
    let flm = f lm and frm = f rm in
    let left = simpson1 a m fa flm fm in
    let right = simpson1 m b fm frm fb in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15. *. tol then
      left +. right +. (delta /. 15.)
    else
      go a m fa flm fm left (tol /. 2.) (depth - 1)
      +. go m b fm frm fb right (tol /. 2.) (depth - 1)
  in
  let fa = f a and fb = f b and fm = f ((a +. b) /. 2.) in
  go a b fa fm fb (simpson1 a b fa fm fb) tol 50

let trapezoid_samples ts vs =
  let n = Array.length ts in
  if n <> Array.length vs then invalid_arg "Quad.trapezoid_samples: mismatch";
  if n < 2 then invalid_arg "Quad.trapezoid_samples: need >= 2 samples";
  let acc = ref 0. in
  for i = 0 to n - 2 do
    acc := !acc +. ((ts.(i + 1) -. ts.(i)) *. (vs.(i) +. vs.(i + 1)) /. 2.)
  done;
  !acc
