type t = { ts : float array; vs : float array }

let make ts vs =
  let n = Array.length ts in
  if n <> Array.length vs then invalid_arg "Series.make: length mismatch";
  for i = 0 to n - 2 do
    if ts.(i + 1) < ts.(i) then invalid_arg "Series.make: ts not nondecreasing"
  done;
  { ts; vs }

let length s = Array.length s.ts
let is_empty s = length s = 0

let of_fn f a b n =
  if n < 2 then invalid_arg "Series.of_fn: n < 2";
  let ts =
    Array.init n (fun i -> a +. ((b -. a) *. float_of_int i /. float_of_int (n - 1)))
  in
  { ts; vs = Array.map f ts }

let map f s = { s with vs = Array.map f s.vs }

let map2 f s1 s2 =
  if Array.length s1.ts <> Array.length s2.ts then
    invalid_arg "Series.map2: length mismatch";
  { ts = s1.ts; vs = Array.init (length s1) (fun i -> f s1.vs.(i) s2.vs.(i)) }

let at s t = Interp.linear s.ts s.vs t

let slice s t0 t1 =
  let idx = ref [] in
  Array.iteri (fun i t -> if t >= t0 && t <= t1 then idx := i :: !idx) s.ts;
  let idx = Array.of_list (List.rev !idx) in
  {
    ts = Array.map (fun i -> s.ts.(i)) idx;
    vs = Array.map (fun i -> s.vs.(i)) idx;
  }

let resample s n =
  let ts, vs = Interp.resample s.ts s.vs n in
  { ts; vs }

let integral s = Quad.trapezoid_samples s.ts s.vs

let time_average s =
  let span = s.ts.(length s - 1) -. s.ts.(0) in
  if span = 0. then s.vs.(0) else integral s /. span

let local_extrema s =
  let n = length s in
  let acc = ref [] in
  for i = 1 to n - 2 do
    let a = s.vs.(i - 1) and b = s.vs.(i) and c = s.vs.(i + 1) in
    if b > a && b >= c then acc := (s.ts.(i), b, `Max) :: !acc
    else if b < a && b <= c then acc := (s.ts.(i), b, `Min) :: !acc
  done;
  List.rev !acc

let crossings ?(level = 0.) s =
  Interp.zero_crossings s.ts (Array.map (fun v -> v -. level) s.vs)

let argmax s =
  if is_empty s then invalid_arg "Series.argmax: empty";
  let best = ref 0 in
  Array.iteri (fun i v -> if v > s.vs.(!best) then best := i) s.vs;
  (s.ts.(!best), s.vs.(!best))

let argmin s =
  if is_empty s then invalid_arg "Series.argmin: empty";
  let best = ref 0 in
  Array.iteri (fun i v -> if v < s.vs.(!best) then best := i) s.vs;
  (s.ts.(!best), s.vs.(!best))

let within s lo hi = Array.for_all (fun v -> v > lo && v < hi) s.vs

let tail_from s t0 =
  let n = length s in
  let rec first i = if i >= n || s.ts.(i) >= t0 then i else first (i + 1) in
  let i0 = first 0 in
  {
    ts = Array.sub s.ts i0 (n - i0);
    vs = Array.sub s.vs i0 (n - i0);
  }

let to_list s = Array.to_list (Array.init (length s) (fun i -> (s.ts.(i), s.vs.(i))))

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Array.iteri (fun i t -> Format.fprintf ppf "%g\t%g@," t s.vs.(i)) s.ts;
  Format.fprintf ppf "@]"
