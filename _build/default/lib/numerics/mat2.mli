(** 2×2 real matrices and their spectral decomposition.

    The linearized BCN subsystems are planar LTI systems
    [d/dt (x,y) = A (x,y)]; classifying the equilibrium requires the
    eigenstructure of [A]. *)

type t = { a11 : float; a12 : float; a21 : float; a22 : float }

(** Eigenvalues of a real 2×2 matrix: either two real eigenvalues
    (possibly equal) or a complex-conjugate pair [alpha ± i·beta]
    with [beta > 0]. *)
type eigenvalues =
  | Real_pair of float * float  (** ordered [l1 <= l2] *)
  | Complex_pair of { re : float; im : float }  (** [im > 0] *)

val make : float -> float -> float -> float -> t
val identity : t
val zero : t

val of_rows : Vec2.t -> Vec2.t -> t
val row1 : t -> Vec2.t
val row2 : t -> Vec2.t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val transpose : t -> t

val apply : t -> Vec2.t -> Vec2.t
val det : t -> float
val trace : t -> float

(** [inv m] is the inverse. Raises [Failure] if [det m = 0]. *)
val inv : t -> t

(** [discriminant m] is [trace² − 4·det], whose sign separates real from
    complex eigenvalues. *)
val discriminant : t -> float

val eigenvalues : t -> eigenvalues

(** [eigenvector m l] is a (non-normalized) real eigenvector for the real
    eigenvalue [l]. Raises [Failure] if [l] is not an eigenvalue within
    tolerance or if the eigenspace is the whole plane (scalar matrix), in
    which case any vector works and [(1,0)] is returned instead of failing. *)
val eigenvector : t -> float -> Vec2.t

(** Characteristic polynomial coefficients [(c0, c1)] such that the
    characteristic equation is [l² + c1·l + c0 = 0]
    (i.e. [c1 = −trace], [c0 = det]). *)
val char_poly : t -> float * float

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
