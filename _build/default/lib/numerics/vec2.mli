(** Two-dimensional vectors over [float].

    The phase plane of the BCN system lives in [R^2]; this module provides
    the small amount of planar geometry the analysis needs. *)

type t = { x : float; y : float }

val make : float -> float -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

val dot : t -> t -> float

(** [cross u v] is the z-component of the 3D cross product, i.e. the signed
    area spanned by [u] and [v]. *)
val cross : t -> t -> float

val norm : t -> float
val norm2 : t -> float
val dist : t -> t -> float

(** [normalize v] is the unit vector along [v]. Raises [Invalid_argument]
    on the zero vector. *)
val normalize : t -> t

(** [rotate theta v] rotates [v] counter-clockwise by [theta] radians. *)
val rotate : float -> t -> t

(** [lerp a b s] is the affine interpolation [(1-s)·a + s·b]. *)
val lerp : t -> t -> float -> t

(** [angle v] is [atan2 v.y v.x]. *)
val angle : t -> float

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [of_array a] reads components from [a.(0)], [a.(1)].
    Raises [Invalid_argument] if [Array.length a < 2]. *)
val of_array : float array -> t

val to_array : t -> float array
