(** Numerical integration of scalar functions.

    Used for averaging along trajectories (e.g. mean queue occupancy over a
    limit-cycle period) and for verifying closed-form expressions. *)

(** [trapezoid f a b n] — composite trapezoid rule with [n] panels. *)
val trapezoid : (float -> float) -> float -> float -> int -> float

(** [simpson f a b n] — composite Simpson rule; [n] is rounded up to even. *)
val simpson : (float -> float) -> float -> float -> int -> float

(** [adaptive_simpson ?tol f a b] — recursive adaptive Simpson quadrature
    with absolute tolerance [tol] (default [1e-10]). *)
val adaptive_simpson : ?tol:float -> (float -> float) -> float -> float -> float

(** [trapezoid_samples ts vs] integrates the sampled series [(ts, vs)] with
    the trapezoid rule. Raises [Invalid_argument] on length mismatch or
    fewer than two samples. *)
val trapezoid_samples : float array -> float array -> float
