(** Time series: a pair of equal-length arrays [(ts, vs)] with
    nondecreasing [ts].

    The trajectory recorder, the packet simulator's traces and the figure
    generators all exchange data in this form. *)

type t = { ts : float array; vs : float array }

(** [make ts vs] validates lengths and monotonicity of [ts].
    Raises [Invalid_argument] otherwise. *)
val make : float array -> float array -> t

val length : t -> int
val is_empty : t -> bool

(** [of_fn f a b n] samples [f] at [n] equally spaced points of [[a,b]]. *)
val of_fn : (float -> float) -> float -> float -> int -> t

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

(** [at s t] — piecewise-linear value at time [t] (clamped). *)
val at : t -> float -> float

(** [slice s t0 t1] — restriction to samples with [t0 <= t <= t1]. *)
val slice : t -> float -> float -> t

(** [resample s n] — [n] equally spaced samples over the series range. *)
val resample : t -> int -> t

(** [integral s] — trapezoid integral over the whole series. *)
val integral : t -> float

(** [time_average s] — integral divided by the time span. *)
val time_average : t -> float

(** Local extrema of the piecewise-linear series, as
    [(time, value, `Max | `Min)] triples, endpoints excluded. *)
val local_extrema : t -> (float * float * [ `Max | `Min ]) list

(** Times where the series crosses level [c] (default 0). *)
val crossings : ?level:float -> t -> float list

(** Greatest value and when it occurs; [Invalid_argument] if empty. *)
val argmax : t -> float * float

val argmin : t -> float * float

(** [within s lo hi] — true when every sample value lies in [(lo, hi)]
    (strict, matching the paper's strong-stability Definition 1). *)
val within : t -> float -> float -> bool

(** [tail_from s t0] — samples from the first index with [ts >= t0]. *)
val tail_from : t -> float -> t

val to_list : t -> (float * float) list
val pp : Format.formatter -> t -> unit
