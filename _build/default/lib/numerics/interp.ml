let find_segment xs x =
  (* largest i with xs.(i) <= x, clamped to [0, n-2] *)
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let linear xs ys x =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Interp.linear: length mismatch";
  if n = 0 then invalid_arg "Interp.linear: empty";
  if n = 1 then ys.(0)
  else if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    let i = find_segment xs x in
    let x0 = xs.(i) and x1 = xs.(i + 1) in
    let s = if x1 = x0 then 0. else (x -. x0) /. (x1 -. x0) in
    ys.(i) +. (s *. (ys.(i + 1) -. ys.(i)))
  end

let hermite x0 x1 y0 y1 d0 d1 x =
  let h = x1 -. x0 in
  if h = 0. then y0
  else begin
    let s = (x -. x0) /. h in
    let s2 = s *. s in
    let s3 = s2 *. s in
    let h00 = (2. *. s3) -. (3. *. s2) +. 1. in
    let h10 = s3 -. (2. *. s2) +. s in
    let h01 = (-2. *. s3) +. (3. *. s2) in
    let h11 = s3 -. s2 in
    (h00 *. y0) +. (h10 *. h *. d0) +. (h01 *. y1) +. (h11 *. h *. d1)
  end

let resample xs ys n =
  if n < 2 then invalid_arg "Interp.resample: n < 2";
  let m = Array.length xs in
  if m = 0 then invalid_arg "Interp.resample: empty";
  let a = xs.(0) and b = xs.(m - 1) in
  let xs' =
    Array.init n (fun i -> a +. ((b -. a) *. float_of_int i /. float_of_int (n - 1)))
  in
  let ys' = Array.map (fun x -> linear xs ys x) xs' in
  (xs', ys')

let zero_crossings xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Interp.zero_crossings: mismatch";
  let acc = ref [] in
  for i = 0 to n - 2 do
    let y0 = ys.(i) and y1 = ys.(i + 1) in
    if y0 = 0. then acc := xs.(i) :: !acc
    else if y0 *. y1 < 0. then begin
      let s = y0 /. (y0 -. y1) in
      acc := (xs.(i) +. (s *. (xs.(i + 1) -. xs.(i)))) :: !acc
    end
  done;
  if n > 0 && ys.(n - 1) = 0. then acc := xs.(n - 1) :: !acc;
  List.rev !acc
