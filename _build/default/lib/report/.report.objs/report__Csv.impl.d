lib/report/csv.ml: Array Buffer Fun List Numerics Printf String
