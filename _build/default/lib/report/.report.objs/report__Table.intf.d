lib/report/table.mli:
