lib/report/ascii_plot.ml: Array Buffer Float List Numerics Printf Stdlib String
