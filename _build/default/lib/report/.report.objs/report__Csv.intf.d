lib/report/csv.mli: Numerics
