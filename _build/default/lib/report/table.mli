(** Aligned plain-text tables for the benchmark harness output. *)

val render : headers:string list -> rows:string list list -> string
(** Column-aligned table with a header separator. Rows shorter than the
    header are padded with empty cells; longer rows raise
    [Invalid_argument]. *)

val render_floats :
  ?fmt:(float -> string) ->
  headers:string list ->
  float list list ->
  string
(** Convenience wrapper; default format is ["%.6g"]. *)

val si : float -> string
(** Engineering notation with SI prefixes: [si 2.5e6 = "2.5M"]. *)

val print : headers:string list -> rows:string list list -> unit
(** [render] to stdout. *)
