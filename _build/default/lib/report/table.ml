let render ~headers ~rows =
  let ncols = List.length headers in
  let pad_row r =
    let len = List.length r in
    if len > ncols then invalid_arg "Table.render: row longer than header"
    else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        row)
    rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    (Array.to_list widths);
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let render_floats ?(fmt = Printf.sprintf "%.6g") ~headers rows =
  render ~headers ~rows:(List.map (List.map fmt) rows)

let si v =
  let av = Float.abs v in
  let scaled, suffix =
    if av >= 1e12 then (v /. 1e12, "T")
    else if av >= 1e9 then (v /. 1e9, "G")
    else if av >= 1e6 then (v /. 1e6, "M")
    else if av >= 1e3 then (v /. 1e3, "k")
    else if av = 0. || av >= 1. then (v, "")
    else if av >= 1e-3 then (v *. 1e3, "m")
    else if av >= 1e-6 then (v *. 1e6, "u")
    else (v *. 1e9, "n")
  in
  Printf.sprintf "%.4g%s" scaled suffix

let print ~headers ~rows = print_string (render ~headers ~rows)
