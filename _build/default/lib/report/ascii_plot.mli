(** Terminal renderings of the paper's figures: line plots for time
    series, scatter plots for phase trajectories. Pure text — no external
    plotting dependency. *)

type curve = {
  label : string;
  points : (float * float) list;
  glyph : char;
}

val curve : ?glyph:char -> string -> (float * float) list -> curve
(** Default glyphs are assigned per curve ([*], [+], [o], [x], …) when
    [glyph] is omitted ('\000' means auto). *)

val of_series : ?glyph:char -> string -> Numerics.Series.t -> curve

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  ?x_range:float * float ->
  ?y_range:float * float ->
  curve list ->
  string
(** Plot the curves on a character grid (default 72×20) with numeric
    axis annotations and a legend. Ranges default to the data envelope
    (with a small margin); degenerate ranges are widened. *)

val render_series :
  ?width:int -> ?height:int -> ?title:string -> ?x_label:string ->
  ?y_label:string -> (string * Numerics.Series.t) list -> string

val sparkline : ?width:int -> Numerics.Series.t -> string
(** One-line unicode sparkline of a series (resampled to [width]). *)
