type curve = {
  label : string;
  points : (float * float) list;
  glyph : char;
}

let curve ?(glyph = '\000') label points = { label; points; glyph }

let of_series ?glyph label (s : Numerics.Series.t) =
  curve ?glyph label (Numerics.Series.to_list s)

let auto_glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let assign_glyphs curves =
  List.mapi
    (fun i c ->
      if c.glyph = '\000' then
        { c with glyph = auto_glyphs.(i mod Array.length auto_glyphs) }
      else c)
    curves

let envelope curves =
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  List.iter
    (fun c ->
      List.iter
        (fun (x, y) ->
          if Float.is_finite x && Float.is_finite y then begin
            if x < !xmin then xmin := x;
            if x > !xmax then xmax := x;
            if y < !ymin then ymin := y;
            if y > !ymax then ymax := y
          end)
        c.points)
    curves;
  if !xmin > !xmax then (0., 1., 0., 1.) else (!xmin, !xmax, !ymin, !ymax)

let widen lo hi =
  if lo < hi then (lo, hi)
  else begin
    let pad = if lo = 0. then 1. else Float.abs lo *. 0.1 in
    (lo -. pad, hi +. pad)
  end

let render ?(width = 72) ?(height = 20) ?title ?x_label ?y_label ?x_range
    ?y_range curves =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.render: grid too small";
  let curves = assign_glyphs curves in
  let ex0, ex1, ey0, ey1 = envelope curves in
  let x0, x1 =
    match x_range with Some (a, b) -> (a, b) | None -> widen ex0 ex1
  in
  let y0, y1 =
    match y_range with Some (a, b) -> (a, b) | None -> widen ey0 ey1
  in
  let x0, x1 = widen x0 (Float.max x0 x1) in
  let y0, y1 = widen y0 (Float.max y0 y1) in
  let grid = Array.make_matrix height width ' ' in
  (* zero axes, drawn first so data overwrites them *)
  let col_of x = int_of_float (Float.round ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))) in
  let row_of y =
    (height - 1)
    - int_of_float (Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1)))
  in
  if y0 < 0. && y1 > 0. then begin
    let r = row_of 0. in
    if r >= 0 && r < height then
      for cidx = 0 to width - 1 do
        grid.(r).(cidx) <- '-'
      done
  end;
  if x0 < 0. && x1 > 0. then begin
    let cidx = col_of 0. in
    if cidx >= 0 && cidx < width then
      for r = 0 to height - 1 do
        grid.(r).(cidx) <- (if grid.(r).(cidx) = '-' then '+' else '|')
      done
  end;
  List.iter
    (fun c ->
      List.iter
        (fun (x, y) ->
          if Float.is_finite x && Float.is_finite y then begin
            let cx = col_of x and ry = row_of y in
            if cx >= 0 && cx < width && ry >= 0 && ry < height then
              grid.(ry).(cx) <- c.glyph
          end)
        c.points)
    curves;
  let buf = Buffer.create ((width + 16) * (height + 4)) in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  (match y_label with
  | Some l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n'
  | None -> ());
  let ylab_top = Printf.sprintf "%.4g" y1 in
  let ylab_bot = Printf.sprintf "%.4g" y0 in
  let margin = Stdlib.max (String.length ylab_top) (String.length ylab_bot) in
  Array.iteri
    (fun r row ->
      let lab =
        if r = 0 then ylab_top else if r = height - 1 then ylab_bot else ""
      in
      Buffer.add_string buf (String.make (margin - String.length lab) ' ');
      Buffer.add_string buf lab;
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.init width (fun cidx -> row.(cidx)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make margin ' ');
  Buffer.add_string buf " +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let xlab_left = Printf.sprintf "%.4g" x0 in
  let xlab_right = Printf.sprintf "%.4g" x1 in
  Buffer.add_string buf (String.make (margin + 2) ' ');
  Buffer.add_string buf xlab_left;
  let gap =
    width - String.length xlab_left - String.length xlab_right
  in
  if gap > 0 then Buffer.add_string buf (String.make gap ' ');
  Buffer.add_string buf xlab_right;
  Buffer.add_char buf '\n';
  (match x_label with
  | Some l ->
      Buffer.add_string buf (String.make (margin + 2) ' ');
      Buffer.add_string buf l;
      Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s\n" c.glyph c.label))
    curves;
  Buffer.contents buf

let render_series ?width ?height ?title ?x_label ?y_label named =
  render ?width ?height ?title ?x_label ?y_label
    (List.map (fun (label, s) -> of_series label s) named)

let spark_chars = [| " "; "_"; "."; "-"; "="; "+"; "*"; "#" |]

let sparkline ?(width = 60) (s : Numerics.Series.t) =
  if Numerics.Series.is_empty s then ""
  else begin
    let r = Numerics.Series.resample s width in
    let vs = r.Numerics.Series.vs in
    let lo = Array.fold_left Float.min vs.(0) vs in
    let hi = Array.fold_left Float.max vs.(0) vs in
    let span = if hi > lo then hi -. lo else 1. in
    let levels = Array.length spark_chars in
    String.concat ""
      (Array.to_list
         (Array.map
            (fun v ->
              let idx =
                int_of_float ((v -. lo) /. span *. float_of_int (levels - 1))
              in
              spark_chars.(Stdlib.max 0 (Stdlib.min (levels - 1) idx)))
            vs))
  end
