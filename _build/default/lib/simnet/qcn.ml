open Numerics

type config = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  quant_bits : int;
  bc_limit_bits : float;
  fast_recovery_cycles : int;
  r_ai : float;
}

let default_config ?(t_end = 0.02) ?(sample_dt = 1e-5) (p : Fluid.Params.t) =
  {
    params = p;
    t_end;
    sample_dt;
    initial_rate = Fluid.Params.equilibrium_rate p;
    control_delay = 1e-6;
    quant_bits = 6;
    bc_limit_bits = 150e3 *. 8.;
    fast_recovery_cycles = 5;
    r_ai = 5e6;
  }

type result = {
  queue : Series.t;
  agg_rate : Series.t;
  drops : int;
  delivered_bits : float;
  utilization : float;
  cn_messages : int;
  final_rates : float array;
}

let quantize ~bits ~fb_max fb =
  if bits < 1 then invalid_arg "Qcn.quantize: bits < 1";
  if fb_max <= 0. then invalid_arg "Qcn.quantize: fb_max <= 0";
  let clipped = Float.max (-.fb_max) (Float.min 0. fb) in
  let levels = float_of_int ((1 lsl bits) - 1) in
  let step = fb_max /. levels in
  Float.round (clipped /. step) *. step

(* QCN reaction point: multiplicative decrease on notification, then
   byte-counter driven fast recovery / active increase. *)
type rp = {
  id : int;
  mutable rate : float;
  mutable target : float;
  mutable bc_count : float;  (* bits sent since last byte-counter expiry *)
  mutable cycles : int;  (* completed recovery cycles since last decrease *)
  min_rate : float;
  max_rate : float;
}

let rp_decrease rp fb_normalized =
  (* fb_normalized in [0, 1]; decrease factor Gd-scaled like the BCN gain *)
  rp.target <- rp.rate;
  let factor = 1. -. (0.5 *. fb_normalized) in
  rp.rate <- Float.max rp.min_rate (rp.rate *. factor);
  rp.cycles <- 0;
  rp.bc_count <- 0.

let rp_byte_counter_expiry cfg rp =
  if rp.cycles >= cfg.fast_recovery_cycles then
    (* active increase: probe for more bandwidth *)
    rp.target <- rp.target +. cfg.r_ai
  else rp.cycles <- rp.cycles + 1;
  rp.rate <- Float.min rp.max_rate ((rp.rate +. rp.target) /. 2.)

let run cfg =
  if cfg.t_end <= 0. then invalid_arg "Qcn.run: t_end <= 0";
  let p = cfg.params in
  let n = p.Fluid.Params.n_flows in
  let e = Engine.create () in
  let delivered = ref 0. in
  let cn_messages = ref 0 in
  let fifo = Fifo.create ~capacity_bits:p.Fluid.Params.buffer in
  let busy = ref false in
  let q_old = ref 0. in
  let arrivals = ref 0 in
  let sample_every =
    Stdlib.max 1 (int_of_float (Float.round (1. /. p.Fluid.Params.pm)))
  in
  let fb_max = p.Fluid.Params.q0 *. (1. +. (2. *. p.Fluid.Params.w)) in
  let rps =
    Array.init n (fun id ->
        {
          id;
          rate = cfg.initial_rate;
          target = cfg.initial_rate;
          bc_count = 0.;
          cycles = 0;
          min_rate = 1e3;
          max_rate = p.Fluid.Params.capacity;
        })
  in
  let rec serve e =
    if not !busy then
      match Fifo.dequeue fifo with
      | None -> ()
      | Some pkt ->
          busy := true;
          Engine.schedule e
            ~delay:(float_of_int pkt.Packet.bits /. p.Fluid.Params.capacity)
            (fun e ->
              busy := false;
              delivered := !delivered +. float_of_int pkt.Packet.bits;
              serve e)
  in
  let congestion_point e (pkt : Packet.t) =
    incr arrivals;
    if !arrivals mod sample_every = 0 then begin
      let q = Fifo.occupancy_bits fifo in
      let dq = q -. !q_old in
      q_old := q;
      let fb =
        -.((q -. p.Fluid.Params.q0) +. (p.Fluid.Params.w *. dq))
      in
      if fb < 0. then begin
        let fbq = quantize ~bits:cfg.quant_bits ~fb_max fb in
        if fbq < 0. then begin
          incr cn_messages;
          match pkt.Packet.kind with
          | Packet.Data { flow; _ } ->
              Engine.schedule e ~delay:cfg.control_delay (fun _e ->
                  rp_decrease rps.(flow) (Float.abs fbq /. fb_max))
          | Packet.Bcn _ | Packet.Pause _ -> ()
        end
      end
    end
  in
  let receive e pkt =
    let accepted = Fifo.enqueue fifo pkt in
    if accepted then congestion_point e pkt;
    serve e
  in
  (* pacing loops with byte counters *)
  let rec pace rp e =
    if Engine.now e <= cfg.t_end then begin
      let pkt =
        Packet.make_data ~seq:0 ~now:(Engine.now e) ~flow:rp.id ~rrt:None
      in
      receive e pkt;
      rp.bc_count <- rp.bc_count +. float_of_int pkt.Packet.bits;
      if rp.bc_count >= cfg.bc_limit_bits then begin
        rp.bc_count <- 0.;
        rp_byte_counter_expiry cfg rp
      end;
      Engine.schedule e
        ~delay:(float_of_int pkt.Packet.bits /. rp.rate)
        (pace rp)
    end
  in
  Array.iter
    (fun rp ->
      let jitter =
        float_of_int Packet.data_frame_bits /. rp.rate
        *. (float_of_int (rp.id mod 97) /. 97.)
      in
      Engine.schedule e ~delay:jitter (pace rp))
    rps;
  (* tracing *)
  let n_samples = int_of_float (Float.ceil (cfg.t_end /. cfg.sample_dt)) + 1 in
  let ts = Array.make n_samples 0. in
  let qs = Array.make n_samples 0. in
  let ags = Array.make n_samples 0. in
  let idx = ref 0 in
  let rec sampler e =
    if !idx < n_samples then begin
      ts.(!idx) <- Engine.now e;
      qs.(!idx) <- Fifo.occupancy_bits fifo;
      ags.(!idx) <- Array.fold_left (fun acc rp -> acc +. rp.rate) 0. rps;
      incr idx
    end;
    if Engine.now e +. cfg.sample_dt <= cfg.t_end then
      Engine.schedule e ~delay:cfg.sample_dt sampler
  in
  Engine.schedule e ~delay:0. sampler;
  Engine.run ~until:cfg.t_end e;
  let m = !idx in
  let cut a = Array.sub a 0 m in
  {
    queue = Series.make (cut ts) (cut qs);
    agg_rate = Series.make (cut ts) (cut ags);
    drops = Fifo.drops fifo;
    delivered_bits = !delivered;
    utilization = !delivered /. (p.Fluid.Params.capacity *. cfg.t_end);
    cn_messages = !cn_messages;
    final_rates = Array.map (fun rp -> rp.rate) rps;
  }
