(** Frames exchanged in the simulated DCE network.

    Mirrors the BCN message format of paper Fig. 2 at the level of detail
    the control loop needs: a data frame may carry a rate-regulator tag
    (RRT) holding the congestion point id (CPID) it is associated with;
    a BCN frame carries the feedback value [fb = sigma] and the CPID;
    PAUSE frames implement IEEE 802.3x on/off flow control. *)

type kind =
  | Data of {
      flow : int;  (** source id *)
      rrt : int option;  (** CPID carried in the rate regulator tag *)
    }
  | Bcn of {
      flow : int;  (** destination source id (DA of Fig. 2) *)
      fb : float;  (** the feedback field: sigma at the sampling instant *)
      cpid : int;  (** congestion point id (switch interface) *)
    }
  | Pause of { on : bool }  (** 802.3x PAUSE (on) / un-PAUSE (off) *)

type t = { kind : kind; bits : int; born : float; seq : int }

val data_frame_bits : int
(** 1500-byte Ethernet frame = 12000 bits. *)

val control_frame_bits : int
(** 64-byte minimum frame = 512 bits (BCN and PAUSE frames). *)

val make_data : seq:int -> now:float -> flow:int -> rrt:int option -> t
val make_bcn : seq:int -> now:float -> flow:int -> fb:float -> cpid:int -> t
val make_pause : seq:int -> now:float -> on:bool -> t

val is_data : t -> bool
val flow_of : t -> int option
(** The flow a data or BCN frame concerns; [None] for PAUSE. *)

val pp : Format.formatter -> t -> unit
