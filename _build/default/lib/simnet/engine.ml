type t = {
  mutable clock : float;
  queue : (t -> unit) Eventq.t;
  mutable stopped : bool;
  mutable processed : int;
}

let create () =
  { clock = 0.; queue = Eventq.create (); stopped = false; processed = 0 }

let now e = e.clock

let schedule_at e ~time f =
  if time < e.clock then invalid_arg "Engine.schedule_at: time in the past";
  Eventq.push e.queue time f

let schedule e ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at e ~time:(e.clock +. delay) f

let stop e = e.stopped <- true

let run ?until e =
  e.stopped <- false;
  let horizon = match until with Some t -> t | None -> infinity in
  let rec loop () =
    if e.stopped then ()
    else
      match Eventq.peek e.queue with
      | None -> ()
      | Some (t, _) when t > horizon -> ()
      | Some _ -> (
          match Eventq.pop e.queue with
          | None -> ()
          | Some (t, f) ->
              e.clock <- t;
              e.processed <- e.processed + 1;
              f e;
              loop ())
  in
  loop ();
  (match until with
  | Some t when not e.stopped -> if e.clock < t then e.clock <- t
  | Some _ | None -> ())

let events_processed e = e.processed
let pending e = Eventq.size e.queue
