open Numerics

type config = {
  params : Fluid.Params.t;
  n_hot : int;
  victim_rate : float;
  t_end : float;
  sample_dt : float;
  initial_hot_rate : float;
  control_delay : float;
  enable_bcn : bool;
  enable_pause : bool;
}

let default_config ?(t_end = 0.02) ?(sample_dt = 1e-5) ?(n_hot = 10)
    ?victim_rate (p : Fluid.Params.t) =
  let fair = Fluid.Params.equilibrium_rate p in
  {
    params = p;
    n_hot;
    victim_rate =
      (match victim_rate with
      | Some r -> r
      | None -> 0.05 *. p.Fluid.Params.capacity);
    t_end;
    sample_dt;
    initial_hot_rate = 0.5 *. fair *. float_of_int p.Fluid.Params.n_flows
                       /. float_of_int (Stdlib.max 1 n_hot);
    control_delay = 1e-6;
    enable_bcn = true;
    enable_pause = true;
  }

type result = {
  core_queue : Series.t;
  edge_hot_queue : Series.t;
  victim_delivered_bits : float;
  victim_goodput : float;
  victim_offered : float;
  hot_delivered_bits : float;
  core_drops : int;
  core_pause_on : int;
  edge_pause_on : int;
  victim_paused_fraction : float;
}

let victim_scenario cfg =
  if cfg.n_hot < 1 then invalid_arg "Topology.victim_scenario: n_hot < 1";
  let p = cfg.params in
  let e = Engine.create () in
  let hot_delivered = ref 0. and victim_delivered = ref 0. in
  let sources = Array.make (cfg.n_hot + 1) None in
  let victim_id = cfg.n_hot in
  let pause_all on e =
    Array.iter
      (function Some s -> Source.set_paused s e on | None -> ())
      sources
  in
  (* Core switch: the bottleneck, runs the BCN congestion point. Its PAUSE
     frames go to the edge-hot port, not to the sources. *)
  let edge_hot_ref = ref None in
  let core_cfg =
    {
      (Switch.default_config p ~cpid:1) with
      Switch.enable_bcn = cfg.enable_bcn;
      enable_pause = cfg.enable_pause;
    }
  in
  let core =
    Switch.create core_cfg ~control_out:(fun e pkt ->
        Engine.schedule e ~delay:cfg.control_delay (fun e ->
            match pkt.Packet.kind with
            | Packet.Bcn { flow; fb; cpid } -> (
                match sources.(flow) with
                | Some src ->
                    Source.handle_bcn src ~now:(Engine.now e) ~fb ~cpid
                | None -> ())
            | Packet.Pause { on } -> (
                match !edge_hot_ref with
                | Some edge -> Switch.set_egress_paused edge e on
                | None -> ())
            | Packet.Data _ -> ()))
  in
  Switch.set_forward core (fun _e pkt ->
      hot_delivered := !hot_delivered +. float_of_int pkt.Packet.bits);
  (* Edge switch, hot port: plain forwarder (no congestion point of its
     own) feeding the core. When ITS queue passes the PAUSE threshold it
     pauses the shared ingress link — i.e. every source. *)
  (* Edge ports run at 4x the core speed so the core port is the
     congestion point; the edge only congests when the core PAUSEs it. *)
  let edge_port_cfg cpid =
    {
      (Switch.default_config p ~cpid) with
      Switch.capacity = 4. *. p.Fluid.Params.capacity;
      enable_bcn = false;
      enable_pause = cfg.enable_pause;
    }
  in
  let edge_hot =
    Switch.create (edge_port_cfg 2) ~control_out:(fun e pkt ->
        Engine.schedule e ~delay:cfg.control_delay (fun e ->
            match pkt.Packet.kind with
            | Packet.Pause { on } -> pause_all on e
            | Packet.Bcn _ | Packet.Data _ -> ()))
  in
  edge_hot_ref := Some edge_hot;
  Switch.set_forward edge_hot (fun e pkt -> Switch.receive core e pkt);
  (* Edge switch, victim port: forwards straight to the victim sink and is
     never congested. *)
  let edge_victim =
    Switch.create (edge_port_cfg 3) ~control_out:(fun _e _pkt -> ())
  in
  Switch.set_forward edge_victim (fun _e pkt ->
      victim_delivered := !victim_delivered +. float_of_int pkt.Packet.bits);
  (* Sources: hot flows route to the hot port, the victim to its own. *)
  for i = 0 to cfg.n_hot - 1 do
    let src =
      Source.create ~id:i ~initial_rate:cfg.initial_hot_rate
        ~max_rate:p.Fluid.Params.capacity ~gi:p.Fluid.Params.gi
        ~gd:p.Fluid.Params.gd ~ru:p.Fluid.Params.ru
        ~send:(fun e pkt -> Switch.receive edge_hot e pkt)
        ()
    in
    sources.(i) <- Some src;
    Source.start src e
  done;
  let victim =
    Source.create ~id:victim_id ~initial_rate:cfg.victim_rate
      ~max_rate:cfg.victim_rate ~gi:p.Fluid.Params.gi ~gd:p.Fluid.Params.gd
      ~ru:p.Fluid.Params.ru
      ~send:(fun e pkt -> Switch.receive edge_victim e pkt)
      ()
  in
  sources.(victim_id) <- Some victim;
  Source.start victim e;
  (* trace sampler *)
  let n_samples = int_of_float (Float.ceil (cfg.t_end /. cfg.sample_dt)) + 1 in
  let ts = Array.make n_samples 0. in
  let core_q = Array.make n_samples 0. in
  let edge_q = Array.make n_samples 0. in
  let idx = ref 0 in
  let paused_samples = ref 0 in
  let rec sampler e =
    if !idx < n_samples then begin
      ts.(!idx) <- Engine.now e;
      core_q.(!idx) <- Switch.queue_bits core;
      edge_q.(!idx) <- Switch.queue_bits edge_hot;
      if Source.is_paused victim then incr paused_samples;
      incr idx
    end;
    if Engine.now e +. cfg.sample_dt <= cfg.t_end then
      Engine.schedule e ~delay:cfg.sample_dt sampler
  in
  Engine.schedule e ~delay:0. sampler;
  Engine.run ~until:cfg.t_end e;
  let m = !idx in
  let cut a = Array.sub a 0 m in
  {
    core_queue = Series.make (cut ts) (cut core_q);
    edge_hot_queue = Series.make (cut ts) (cut edge_q);
    victim_delivered_bits = !victim_delivered;
    victim_goodput = !victim_delivered /. cfg.t_end;
    victim_offered = cfg.victim_rate;
    hot_delivered_bits = !hot_delivered;
    core_drops = Fifo.drops (Switch.fifo core);
    core_pause_on = (Switch.stats core).Switch.pause_on;
    edge_pause_on = (Switch.stats edge_hot).Switch.pause_on;
    victim_paused_fraction =
      (if m = 0 then 0. else float_of_int !paused_samples /. float_of_int m);
  }
