(** Binary min-heap priority queue keyed by time.

    The discrete-event engine's core data structure. Entries with equal
    timestamps pop in insertion order (FIFO tie-breaking), which keeps
    packet orderings deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> float -> 'a -> unit
(** [push q t v] inserts [v] with key [t]. Raises [Invalid_argument] on a
    NaN key. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest entry. *)

val peek : 'a t -> (float * 'a) option

val size : 'a t -> int
val is_empty : 'a t -> bool

val drain : 'a t -> (float * 'a) list
(** Pop everything, in order. *)
