type update_mode = Literal | Zoh_fluid

type t = {
  id : int;
  mutable rate : float;
  min_rate : float;
  max_rate : float;
  mode : update_mode;
  gi : float;
  gd : float;
  ru : float;
  send : Engine.t -> Packet.t -> unit;
  hold_timeout : float;  (* Zoh_fluid: how long a held feedback stays valid *)
  mutable rrt : int option;  (* CPID of the associated congestion point *)
  mutable fb_hold : float;  (* latest feedback (Zoh_fluid mode) *)
  mutable hold_until : float;
  mutable last_integration : float;
  mutable paused : bool;
  mutable running : bool;
  mutable epoch : int;  (* invalidates stale pacing events after a pause *)
  mutable seq : int;
  mutable frames : int;
  mutable bits : float;
}

let create ~id ~initial_rate ?(min_rate = 1e3) ?(max_rate = infinity)
    ?(mode = Zoh_fluid) ?(hold_timeout = infinity) ~gi ~gd ~ru ~send () =
  if initial_rate <= 0. then invalid_arg "Source.create: initial_rate <= 0";
  if min_rate <= 0. then invalid_arg "Source.create: min_rate <= 0";
  {
    id;
    rate = Float.min (Float.max initial_rate min_rate) max_rate;
    min_rate;
    max_rate;
    mode;
    gi;
    gd;
    ru;
    send;
    hold_timeout;
    rrt = None;
    fb_hold = 0.;
    hold_until = infinity;
    last_integration = 0.;
    paused = false;
    running = false;
    epoch = 0;
    seq = 0;
    frames = 0;
    bits = 0.;
  }

let clamp src v = Float.min src.max_rate (Float.max src.min_rate v)

(* Zoh_fluid: integrate the fluid rate law with the held feedback from
   [last_integration] to [now]. The decrease law dr/dt = Gd·fb·r has the
   exact solution r·exp(Gd·fb·dt). *)
let integrate_held src now =
  (* the held feedback is only trusted up to [hold_until]: the fluid model
     assumes a fresh sigma every sampling interval, so integrating a stale
     value indefinitely would let one congestion episode starve the source
     forever *)
  let upto = Float.min now src.hold_until in
  let dt = upto -. src.last_integration in
  if dt > 0. then begin
    let fb = src.fb_hold in
    if fb > 0. then
      src.rate <- clamp src (src.rate +. (src.gi *. src.ru *. fb *. dt))
    else if fb < 0. then
      src.rate <- clamp src (src.rate *. exp (src.gd *. fb *. dt))
  end;
  src.last_integration <- now

let rec pacing_loop src epoch e =
  if src.epoch = epoch && not src.paused then begin
    (match src.mode with
    | Zoh_fluid -> integrate_held src (Engine.now e)
    | Literal -> ());
    let pkt =
      Packet.make_data ~seq:src.seq ~now:(Engine.now e) ~flow:src.id
        ~rrt:src.rrt
    in
    src.seq <- src.seq + 1;
    src.frames <- src.frames + 1;
    src.bits <- src.bits +. float_of_int pkt.Packet.bits;
    src.send e pkt;
    let gap = float_of_int pkt.Packet.bits /. src.rate in
    Engine.schedule e ~delay:gap (pacing_loop src epoch)
  end

let start src e =
  if not src.running then begin
    src.running <- true;
    src.epoch <- src.epoch + 1;
    src.last_integration <- Engine.now e;
    (* stagger by id so N sources do not fire in lockstep at t = 0 *)
    let jitter =
      float_of_int Packet.data_frame_bits /. src.rate
      *. (float_of_int (src.id mod 97) /. 97.)
    in
    Engine.schedule e ~delay:jitter (pacing_loop src src.epoch)
  end

let handle_bcn src ~now ~fb ~cpid =
  (match src.mode with
  | Literal ->
      if fb > 0. then
        src.rate <- clamp src (src.rate +. (src.gi *. src.ru *. fb))
      else if fb < 0. then
        src.rate <- clamp src (src.rate *. (1. +. (src.gd *. fb)))
  | Zoh_fluid ->
      (* finish the previous hold interval, then switch to the new value *)
      integrate_held src now;
      src.fb_hold <- fb;
      src.hold_until <- now +. src.hold_timeout);
  if fb < 0. then src.rrt <- Some cpid

let set_paused src e on =
  if on <> src.paused then begin
    src.paused <- on;
    src.epoch <- src.epoch + 1;
    (* a paused source neither sends nor ramps: restart the hold clock *)
    src.last_integration <- Engine.now e;
    if not on && src.running then
      Engine.schedule e ~delay:0. (pacing_loop src src.epoch)
  end

let rate src = src.rate
let id src = src.id
let tagged src = src.rrt <> None
let is_paused src = src.paused
let frames_sent src = src.frames
let bits_sent src = src.bits
