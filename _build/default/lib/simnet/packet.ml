type kind =
  | Data of { flow : int; rrt : int option }
  | Bcn of { flow : int; fb : float; cpid : int }
  | Pause of { on : bool }

type t = { kind : kind; bits : int; born : float; seq : int }

let data_frame_bits = 12000
let control_frame_bits = 512

let make_data ~seq ~now ~flow ~rrt =
  { kind = Data { flow; rrt }; bits = data_frame_bits; born = now; seq }

let make_bcn ~seq ~now ~flow ~fb ~cpid =
  { kind = Bcn { flow; fb; cpid }; bits = control_frame_bits; born = now; seq }

let make_pause ~seq ~now ~on =
  { kind = Pause { on }; bits = control_frame_bits; born = now; seq }

let is_data p = match p.kind with Data _ -> true | Bcn _ | Pause _ -> false

let flow_of p =
  match p.kind with
  | Data { flow; _ } | Bcn { flow; _ } -> Some flow
  | Pause _ -> None

let pp ppf p =
  match p.kind with
  | Data { flow; rrt } ->
      Format.fprintf ppf "DATA[flow=%d%s seq=%d]" flow
        (match rrt with Some c -> Printf.sprintf " rrt=%d" c | None -> "")
        p.seq
  | Bcn { flow; fb; cpid } ->
      Format.fprintf ppf "BCN[flow=%d fb=%g cpid=%d]" flow fb cpid
  | Pause { on } -> Format.fprintf ppf "PAUSE[%s]" (if on then "on" else "off")
