lib/simnet/runner.ml: Array Engine Fifo Float Fluid Histogram Numerics Packet Series Source Switch
