lib/simnet/fifo.mli: Packet
