lib/simnet/e2cm.mli: Fluid Numerics
