lib/simnet/packet.ml: Format Printf
