lib/simnet/workload.ml: Engine List Packet Random
