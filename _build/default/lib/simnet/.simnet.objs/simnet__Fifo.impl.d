lib/simnet/fifo.ml: Packet Queue
