lib/simnet/runner.mli: Fluid Numerics Source Switch
