lib/simnet/switch.mli: Engine Fifo Fluid Packet Random
