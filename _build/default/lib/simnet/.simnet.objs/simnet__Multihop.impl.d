lib/simnet/multihop.ml: Array Engine Fifo Float Fluid Numerics Packet Series Source Stats Switch
