lib/simnet/eventq.mli:
