lib/simnet/engine.mli:
