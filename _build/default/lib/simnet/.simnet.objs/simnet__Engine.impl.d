lib/simnet/engine.ml: Eventq
