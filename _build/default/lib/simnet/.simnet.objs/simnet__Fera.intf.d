lib/simnet/fera.mli: Fluid Numerics
