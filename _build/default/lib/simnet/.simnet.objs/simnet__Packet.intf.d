lib/simnet/packet.mli: Format
