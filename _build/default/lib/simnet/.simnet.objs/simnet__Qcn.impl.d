lib/simnet/qcn.ml: Array Engine Fifo Float Fluid Numerics Packet Series Stdlib
