lib/simnet/topology.ml: Array Engine Fifo Float Fluid Numerics Packet Series Source Stdlib Switch
