lib/simnet/qcn.mli: Fluid Numerics
