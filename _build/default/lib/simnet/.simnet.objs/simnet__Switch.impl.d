lib/simnet/switch.ml: Engine Fifo Float Fluid Packet Random Stdlib
