lib/simnet/topology.mli: Fluid Numerics
