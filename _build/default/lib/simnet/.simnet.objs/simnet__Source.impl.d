lib/simnet/source.ml: Engine Float Packet
