lib/simnet/workload.mli: Engine Packet
