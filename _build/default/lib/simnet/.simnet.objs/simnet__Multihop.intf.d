lib/simnet/multihop.mli: Fluid Numerics
