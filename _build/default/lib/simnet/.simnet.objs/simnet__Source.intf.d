lib/simnet/source.mli: Engine Packet
