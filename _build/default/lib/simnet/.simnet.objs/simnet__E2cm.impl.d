lib/simnet/e2cm.ml: Array Engine Fifo Float Fluid Numerics Packet Series Stdlib
