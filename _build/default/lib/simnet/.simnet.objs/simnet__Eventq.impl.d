lib/simnet/eventq.ml: Array Float List Stdlib
