lib/simnet/fera.ml: Array Engine Fifo Float Fluid Numerics Packet Series
