(** QCN (Quantized Congestion Notification) — the fourth 802.1Qau
    proposal discussed in paper §II.A, implemented as an extension so the
    BCN analysis can be contrasted with its successor.

    Differences from BCN that matter to the control loop:
    - the congestion point sends {e only negative} feedback, quantized to
      a few bits ([Fb = −(q_off + w·q_delta)], clipped and quantized);
    - the reaction point performs multiplicative decrease on feedback and
      recovers {e autonomously} (no positive messages): after a decrease
      it alternates fast-recovery cycles ([r ← (r + target)/2] every
      byte-counter expiry) and active-increase cycles ([target += R_AI]).

    The byte-counter-only reaction point is implemented (the standard's
    backup timer is omitted — a simulation at these time scales triggers
    the byte counter first; recorded as a substitution in DESIGN.md). *)

type config = {
  params : Fluid.Params.t;
      (** capacity/buffer/q0/w/pm reused; [gd] scales the decrease *)
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  quant_bits : int;  (** feedback quantization width (standard: 6) *)
  bc_limit_bits : float;  (** byte-counter window (standard: 150 kB) *)
  fast_recovery_cycles : int;  (** cycles before active increase (5) *)
  r_ai : float;  (** active-increase step, bit/s *)
}

val default_config : ?t_end:float -> ?sample_dt:float -> Fluid.Params.t -> config

type result = {
  queue : Numerics.Series.t;
  agg_rate : Numerics.Series.t;
  drops : int;
  delivered_bits : float;
  utilization : float;
  cn_messages : int;  (** congestion notifications sent *)
  final_rates : float array;
}

val run : config -> result

val quantize : bits:int -> fb_max:float -> float -> float
(** [quantize ~bits ~fb_max fb] clips [fb] to [[−fb_max, 0]] and rounds it
    to one of [2^bits] levels; exposed for the unit tests. *)
