(** Bit-counted FIFO packet queue with a hard capacity — the core-switch
    buffer whose occupancy [q t] is the controlled variable of the whole
    system. Tail-drop on overflow, with drop accounting. *)

type t

val create : capacity_bits:float -> t
(** Raises [Invalid_argument] when the capacity is not positive. *)

val enqueue : t -> Packet.t -> bool
(** [false] when the frame did not fit and was dropped (tail drop). *)

val dequeue : t -> Packet.t option

val occupancy_bits : t -> float
(** Current queue length in bits — the [q t] of the model. *)

val length : t -> int
(** Queued frames. *)

val capacity_bits : t -> float
val drops : t -> int
val dropped_bits : t -> float

val enqueued_bits : t -> float
(** Cumulative bits accepted (the arrival counter of the congestion
    point). *)

val dequeued_bits : t -> float
(** Cumulative bits served (the departure counter). *)
