(** Multi-switch scenarios.

    The paper's introduction motivates BCN with the failure mode of plain
    802.3x PAUSE: "congestion can roll back from switch to switch,
    affecting flows that do not contribute to the congestion, but happen
    to share a link with flows that do." The {!victim_scenario} builds the
    canonical two-hop illustration:

    {v
      hot sources ──┐                ┌── edge-hot port ── core (bottleneck) ── sink
                    ├── shared link ─┤
      victim source ┘                └── edge-victim port ─────────────────── sink
    v}

    All sources share the ingress link into the edge switch. The core is
    the only congested queue. With PAUSE alone, the core pauses the
    edge-hot port; its queue then fills and the edge pauses the {e shared
    ingress link} — stalling the victim although its own path is idle.
    With BCN enabled, the hot sources are rate-limited at the reaction
    points, the core queue never reaches the PAUSE threshold, and the
    victim is untouched. *)

type config = {
  params : Fluid.Params.t;  (** gains/thresholds; capacity = bottleneck *)
  n_hot : int;
  victim_rate : float;  (** offered rate of the victim flow, bit/s *)
  t_end : float;
  sample_dt : float;
  initial_hot_rate : float;
  control_delay : float;
  enable_bcn : bool;
  enable_pause : bool;
}

val default_config :
  ?t_end:float -> ?sample_dt:float -> ?n_hot:int -> ?victim_rate:float ->
  Fluid.Params.t -> config

type result = {
  core_queue : Numerics.Series.t;
  edge_hot_queue : Numerics.Series.t;
  victim_delivered_bits : float;
  victim_goodput : float;  (** delivered / t_end, bit/s *)
  victim_offered : float;
  hot_delivered_bits : float;
  core_drops : int;
  core_pause_on : int;
  edge_pause_on : int;
  victim_paused_fraction : float;
      (** fraction of trace samples at which the victim source was held
          in PAUSE *)
}

val victim_scenario : config -> result
