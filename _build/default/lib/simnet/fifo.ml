type t = {
  capacity : float;
  items : Packet.t Queue.t;
  mutable occupancy : float;
  mutable drops : int;
  mutable dropped : float;
  mutable in_bits : float;
  mutable out_bits : float;
}

let create ~capacity_bits =
  if capacity_bits <= 0. then invalid_arg "Fifo.create: capacity <= 0";
  {
    capacity = capacity_bits;
    items = Queue.create ();
    occupancy = 0.;
    drops = 0;
    dropped = 0.;
    in_bits = 0.;
    out_bits = 0.;
  }

let enqueue q (p : Packet.t) =
  let bits = float_of_int p.Packet.bits in
  if q.occupancy +. bits > q.capacity then begin
    q.drops <- q.drops + 1;
    q.dropped <- q.dropped +. bits;
    false
  end
  else begin
    Queue.push p q.items;
    q.occupancy <- q.occupancy +. bits;
    q.in_bits <- q.in_bits +. bits;
    true
  end

let dequeue q =
  match Queue.take_opt q.items with
  | None -> None
  | Some p ->
      let bits = float_of_int p.Packet.bits in
      q.occupancy <- q.occupancy -. bits;
      q.out_bits <- q.out_bits +. bits;
      Some p

let occupancy_bits q = q.occupancy
let length q = Queue.length q.items
let capacity_bits q = q.capacity
let drops q = q.drops
let dropped_bits q = q.dropped
let enqueued_bits q = q.in_bits
let dequeued_bits q = q.out_bits
