open Numerics

type fluid_vs_packet = {
  packet_queue : Series.t;
  fluid_queue : Series.t;
  rmse : float;
  rmse_rel_q0 : float;
  corr : float;
  packet_mean_tail : float;
  fluid_mean_tail : float;
  packet_drops : int;
  utilization : float;
}

let validation_params =
  Fluid.Params.make ~n_flows:10 ~capacity:1e9 ~q0:2e6 ~buffer:1.5e7 ~gi:1.0
    ~gd:(1. /. 64.) ~ru:1e5 ~w:2. ~pm:0.2 ~mu:5e6 ()

let fluid_vs_packet ?t_end ?(h_fluid = 1e-5) p =
  let slower_period =
    Float.max
      (2. *. Float.pi /. sqrt (Fluid.Linearized.stiffness p Fluid.Linearized.Increase))
      (2. *. Float.pi /. sqrt (Fluid.Linearized.stiffness p Fluid.Linearized.Decrease))
  in
  let t_end =
    match t_end with Some t -> t | None -> 40. *. slower_period
  in
  let mu = Float.max p.Fluid.Params.mu (0.05 *. Fluid.Params.equilibrium_rate p) in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end ~sample_dt:(t_end /. 2000.) p) with
      Simnet.Runner.broadcast_feedback = true;
      sampling = Simnet.Switch.Timer (Simnet.Switch.fluid_sampling_period p);
      mode = Simnet.Source.Zoh_fluid;
      initial_rate = mu;
      enable_pause = false;
    }
  in
  let r = Simnet.Runner.run cfg in
  let ph = Fluid.Model.simulate_physical ~h:h_fluid ~r_init:mu ~t_end p in
  let qs = Series.resample r.Simnet.Runner.queue 1000 in
  let qf = Array.map (fun t -> Series.at ph.Fluid.Model.q t) qs.Series.ts in
  let tail s = Series.time_average (Series.tail_from s (t_end /. 2.)) in
  {
    packet_queue = r.Simnet.Runner.queue;
    fluid_queue = ph.Fluid.Model.q;
    rmse = Stats.rmse qs.Series.vs qf;
    rmse_rel_q0 = Stats.rmse qs.Series.vs qf /. p.Fluid.Params.q0;
    corr = Stats.corr qs.Series.vs qf;
    packet_mean_tail = tail r.Simnet.Runner.queue;
    fluid_mean_tail = tail ph.Fluid.Model.q;
    packet_drops = r.Simnet.Runner.drops;
    utilization = r.Simnet.Runner.utilization;
  }

type linear_vs_strong_row = {
  label : string;
  params : Fluid.Params.t;
  linear_stable : bool;
  theorem1 : bool;
  numeric_strongly_stable : bool;
  numeric_max_q : float;
}

let linear_vs_strong sets =
  List.map
    (fun (label, p) ->
      let baseline =
        Control.Linear_baseline.analyze (Fluid.Params.loop_params p)
      in
      let v = Fluid.Stability.analyze p in
      {
        label;
        params = p;
        linear_stable = baseline.Control.Linear_baseline.claims_stable;
        theorem1 = Fluid.Criterion.satisfied p;
        numeric_strongly_stable = v.Fluid.Stability.strongly_stable;
        numeric_max_q = v.Fluid.Stability.numeric_max +. p.Fluid.Params.q0;
      })
    sets

let default_sweep =
  let base = Fluid.Params.default in
  let req = Fluid.Criterion.required_buffer base in
  [
    ("B = 0.5x required", Fluid.Params.with_buffer base (0.5 *. req));
    ("B = BDP (paper)", base);
    ("B = 1.0x required", Fluid.Params.with_buffer base (1.0001 *. req));
    ("B = 1.5x required", Fluid.Params.with_buffer base (1.5 *. req));
    ("B = 2.0x required", Fluid.Params.with_buffer base (2.0 *. req));
    ( "Gi/4 (gentler increase)",
      Fluid.Params.with_gains ~gi:1. (Fluid.Params.with_buffer base 10e6) );
    ( "Gd x4 (stronger decrease)",
      Fluid.Params.with_gains ~gd:(1. /. 32.) (Fluid.Params.with_buffer base 10e6)
    );
  ]
