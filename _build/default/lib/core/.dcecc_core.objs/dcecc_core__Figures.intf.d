lib/core/figures.mli: Fluid Phaseplane
