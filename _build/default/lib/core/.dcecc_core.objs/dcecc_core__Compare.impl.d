lib/core/compare.ml: Array Control Float Fluid List Numerics Series Simnet Stats
