lib/core/figures.ml: Analysis Array Buffer Compare Filename Float Fluid List Mat2 Numerics Ode Phaseplane Printf Random Report Series Simnet Stats Stdlib Sys Vec2
