lib/core/analysis.mli: Control Fluid Format Phaseplane
