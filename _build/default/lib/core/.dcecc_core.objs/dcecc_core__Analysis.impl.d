lib/core/analysis.ml: Control Float Fluid Format Numerics Ode Phaseplane Printf Report Vec2
