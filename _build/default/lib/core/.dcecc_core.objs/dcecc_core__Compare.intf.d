lib/core/compare.mli: Fluid Numerics
