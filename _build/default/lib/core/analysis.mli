(** The paper's contribution as a single engine: give it a BCN parameter
    set and it produces the complete phase-plane stability report —
    case classification, subsystem spectra, the linear-theory baseline
    verdict (ref. [4] style), the strong-stability verdicts (semi-analytic
    Propositions 2–4 and nonlinear-numeric), the Theorem-1 criterion with
    buffer engineering, and an optional limit-cycle probe. *)

type limit_cycle_probe =
  | Not_probed
  | Probe of Phaseplane.Limit_cycle.verdict

type t = {
  params : Fluid.Params.t;
  case : Fluid.Cases.case;
  increase_kind : Phaseplane.Singular.kind;
  decrease_kind : Phaseplane.Singular.kind;
  increase_eigen : string;  (** human-readable eigenvalue summary *)
  decrease_eigen : string;
  baseline : Control.Linear_baseline.report;
      (** the paper's Proposition-1 baseline: always "stable" *)
  stability : Fluid.Stability.verdict;
  criterion_ok : bool;  (** Theorem 1 *)
  required_buffer : float;
  recommended_buffer : float;  (** Theorem 1 with 10%% headroom *)
  warmup : float option;  (** T0, when the sources start below capacity *)
  limit_cycle : limit_cycle_probe;
}

val run : ?probe_limit_cycle:bool -> ?t_max:float -> Fluid.Params.t -> t
(** [probe_limit_cycle] (default false) iterates the Poincaré return map
    of the nonlinear system on the switching line, which costs a few
    hundred trajectory integrations. *)

val probe_limit_cycle : ?max_iters:int -> Fluid.Params.t ->
  Phaseplane.Limit_cycle.verdict
(** The Poincaré probe on its own: section = the switching line
    [x + k·y = 0], crossings into the rate-decrease region; the seed is
    the first crossing of the canonical trajectory from [(−q0, 0)]. *)

val switching_section : Fluid.Params.t -> Phaseplane.Poincare.section
(** The section used by the probe (exposed for experiments). *)

val pp : Format.formatter -> t -> unit
(** Multi-line report. *)

val to_string : t -> string
