(** Cross-validation experiments: fluid model vs packet-level simulation
    (V1) and linear-theory verdicts vs strong stability (V2). *)

type fluid_vs_packet = {
  packet_queue : Numerics.Series.t;
  fluid_queue : Numerics.Series.t;
  rmse : float;  (** over the common horizon, bits *)
  rmse_rel_q0 : float;  (** rmse / q0 *)
  corr : float;
  packet_mean_tail : float;  (** mean queue over the second half, bits *)
  fluid_mean_tail : float;
  packet_drops : int;
  utilization : float;
}

val fluid_vs_packet :
  ?t_end:float -> ?h_fluid:float -> Fluid.Params.t -> fluid_vs_packet
(** Runs the packet simulator in its fluid-faithful configuration
    (timer sampling at the eqn-(5) period, broadcast feedback, zero-order
    -hold reaction points, PAUSE disabled) and the clamped physical fluid
    model from the same initial state, then compares the queue traces.
    Default [t_end]: 40 periods of the slower subsystem;
    [h_fluid = 1e-5] s. *)

val validation_params : Fluid.Params.t
(** A Case-1 parameter set sized so the fluid approximation's premises
    hold at packet granularity (q0 = 167 frames, sampling interval well
    below the oscillation periods) — used by experiment V1 and the
    integration tests. *)

type linear_vs_strong_row = {
  label : string;
  params : Fluid.Params.t;
  linear_stable : bool;  (** the ref-[4] baseline's verdict *)
  theorem1 : bool;
  numeric_strongly_stable : bool;
  numeric_max_q : float;  (** peak queue, bits *)
}

val linear_vs_strong : (string * Fluid.Params.t) list -> linear_vs_strong_row list
(** Evaluate the three verdicts on each parameter set. The paper's point:
    the first column is constantly "stable" while the others expose
    overflow. *)

val default_sweep : (string * Fluid.Params.t) list
(** The worked example with buffers from 0.5x to 2x the Theorem-1
    requirement, plus gain variations. *)
