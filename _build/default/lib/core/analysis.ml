open Numerics

type limit_cycle_probe =
  | Not_probed
  | Probe of Phaseplane.Limit_cycle.verdict

type t = {
  params : Fluid.Params.t;
  case : Fluid.Cases.case;
  increase_kind : Phaseplane.Singular.kind;
  decrease_kind : Phaseplane.Singular.kind;
  increase_eigen : string;
  decrease_eigen : string;
  baseline : Control.Linear_baseline.report;
  stability : Fluid.Stability.verdict;
  criterion_ok : bool;
  required_buffer : float;
  recommended_buffer : float;
  warmup : float option;
  limit_cycle : limit_cycle_probe;
}

let switching_section p =
  let k = Fluid.Params.k p in
  (* guard n·p with n = (1, k): crossing Up enters x + k·y > 0, the
     rate-decrease region *)
  Phaseplane.Poincare.line_section ~dir:Ode.Up ~normal:(Vec2.make 1. k) ()

let probe_limit_cycle ?(max_iters = 200) p =
  let sys = Fluid.Model.normalized_system p in
  let sec = switching_section p in
  let horizon =
    40.
    *. Float.max
         (2. *. Float.pi
          /. sqrt (Fluid.Linearized.stiffness p Fluid.Linearized.Increase))
         (2. *. Float.pi
          /. sqrt (Fluid.Linearized.stiffness p Fluid.Linearized.Decrease))
  in
  (* seed: the first crossing of the canonical trajectory into the
     decrease region *)
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:horizon sys
      (Fluid.Model.start_point p)
  in
  match tr.Phaseplane.Trajectory.switch_crossings with
  | [] -> Phaseplane.Limit_cycle.Inconclusive "no switching-line crossing"
  | { Phaseplane.Trajectory.cp; _ } :: _ ->
      let s0 = sec.Phaseplane.Poincare.coord_of cp in
      Phaseplane.Limit_cycle.detect ~t_max:horizon ~max_iters sys sec ~s0

(* alias kept visible inside [run], where the optional argument shadows
   the function name *)
let lc_probe = probe_limit_cycle

let run ?(probe_limit_cycle = false) ?t_max p =
  let case = Fluid.Cases.classify p in
  let jac = Fluid.Linearized.jacobian in
  let increase_kind =
    Phaseplane.Singular.classify (jac p Fluid.Linearized.Increase)
  in
  let decrease_kind =
    Phaseplane.Singular.classify (jac p Fluid.Linearized.Decrease)
  in
  let increase_eigen =
    Phaseplane.Singular.eigen_summary (jac p Fluid.Linearized.Increase)
  in
  let decrease_eigen =
    Phaseplane.Singular.eigen_summary (jac p Fluid.Linearized.Decrease)
  in
  let baseline = Control.Linear_baseline.analyze (Fluid.Params.loop_params p) in
  let stability = Fluid.Stability.analyze ?t_max p in
  let limit_cycle =
    if probe_limit_cycle then Probe (lc_probe p) else Not_probed
  in
  {
    params = p;
    case;
    increase_kind;
    decrease_kind;
    increase_eigen;
    decrease_eigen;
    baseline;
    stability;
    criterion_ok = Fluid.Criterion.satisfied p;
    required_buffer = Fluid.Criterion.required_buffer p;
    recommended_buffer = Fluid.Criterion.buffer_for p;
    warmup =
      (let n_mu = float_of_int p.Fluid.Params.n_flows *. p.Fluid.Params.mu in
       if n_mu >= p.Fluid.Params.capacity then None
       else Some (Fluid.Model.warmup_duration p));
    limit_cycle;
  }

let pp ppf r =
  let p = r.params in
  Format.fprintf ppf
    "@[<v>=== BCN phase-plane stability report ===@,\
     %a@,@,\
     classification: %a@,\
     %s@,\
     increase region: %s@,\
     decrease region: %s@,@,\
     --- linear baseline (ref. [4] / Proposition 1) ---@,%a@,@,\
     --- strong stability (Definition 1) ---@,%a@,@,\
     --- Theorem 1 ---@,\
     required buffer (1+sqrt(a/bC))q0 = %sbit; actual B = %sbit@,\
     criterion satisfied: %b@,\
     recommended buffer (10%% headroom) = %sbit@,\
     %a\
     %a@]"
    Fluid.Params.pp p Fluid.Cases.pp_case r.case
    (Fluid.Cases.describe r.case)
    r.increase_eigen r.decrease_eigen Control.Linear_baseline.pp_report
    r.baseline Fluid.Stability.pp_verdict r.stability
    (Report.Table.si r.required_buffer)
    (Report.Table.si p.Fluid.Params.buffer)
    r.criterion_ok
    (Report.Table.si r.recommended_buffer)
    (fun ppf -> function
      | Some t0 -> Format.fprintf ppf "warm-up T0 = %g s@," t0
      | None -> ())
    r.warmup
    (fun ppf -> function
      | Not_probed -> ()
      | Probe v ->
          Format.fprintf ppf "limit-cycle probe: %s@,"
            (match v with
            | Phaseplane.Limit_cycle.Converges_to_origin ->
                "converges to the equilibrium (no cycle)"
            | Phaseplane.Limit_cycle.Cycle { s_star; period; multiplier; _ } ->
                Printf.sprintf
                  "LIMIT CYCLE at section coordinate %g (period %g s%s)"
                  s_star period
                  (match multiplier with
                  | Some m -> Printf.sprintf ", multiplier %.4f" m
                  | None -> "")
            | Phaseplane.Limit_cycle.Diverges -> "diverges"
            | Phaseplane.Limit_cycle.Contracting { ratio; s_last } ->
                Printf.sprintf
                  "slow convergence, no cycle (contraction %.6f per return, \
                   amplitude still %g)"
                  ratio s_last
            | Phaseplane.Limit_cycle.Expanding { ratio; s_last } ->
                Printf.sprintf
                  "amplitudes growing (%.6f per return, at %g) - unstable"
                  ratio s_last
            | Phaseplane.Limit_cycle.Inconclusive msg -> "inconclusive: " ^ msg))
    r.limit_cycle

let to_string r = Format.asprintf "%a" pp r
