(** The linear stability analysis of the BCN loop in the style of the
    paper's ref. [4] (Lu et al., Allerton 2006) — the baseline the paper
    argues against.

    The loop is split into two isolated LTI subsystems (rate increase /
    rate decrease), each with characteristic equation
    [l² + k·n·l + n = 0] where [n = a] for the increase subsystem and
    [n = b·C] for the decrease subsystem (paper eqns (10)/(35), with the
    [n1 = a·N] typo of (35) corrected to [n1 = a]; [a = Ru·Gi·N] already
    contains the flow count). Each subsystem is checked with
    Routh–Hurwitz and with the Nyquist criterion on the open loop
    [L(s) = n·(k·s + 1) / s²]. Proposition 1 of the paper: for physically
    meaningful (positive) parameters both subsystems are always stable —
    so this baseline can never predict the overflow, underflow or limit
    cycles that the phase-plane analysis exposes. *)

type loop_params = {
  a : float;  (** [Ru·Gi·N] — increase-gain aggregate *)
  b : float;  (** [Gd] — decrease gain *)
  k : float;  (** [w / (pm·C)] — switching-line slope parameter *)
  c : float;  (** [C] — bottleneck capacity *)
}

type subsystem = Increase | Decrease

val stiffness : loop_params -> subsystem -> float
(** [n]: [a] for {!Increase}, [b·C] for {!Decrease}. *)

val char_poly : loop_params -> subsystem -> Numerics.Poly.t
(** [l² + k·n·l + n]. *)

val open_loop : loop_params -> subsystem -> Tf.t
(** [L(s) = n·(k·s + 1)/s²]; its unity-feedback closed loop has the
    characteristic polynomial above. *)

val second_order : loop_params -> subsystem -> Lti2.t
(** The subsystem in standard second-order form. *)

val routh_verdict : loop_params -> subsystem -> Routh.verdict
val nyquist_stable : loop_params -> subsystem -> bool

type report = {
  increase : Routh.verdict;
  decrease : Routh.verdict;
  increase_nyquist : bool;
  decrease_nyquist : bool;
  claims_stable : bool;
      (** the baseline's overall verdict: both subsystems stable *)
}

val analyze : loop_params -> report
(** Raises [Invalid_argument] if any parameter is non-positive. *)

val pp_report : Format.formatter -> report -> unit
