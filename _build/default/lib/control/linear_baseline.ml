open Numerics

type loop_params = { a : float; b : float; k : float; c : float }
type subsystem = Increase | Decrease

let validate p =
  if p.a <= 0. || p.b <= 0. || p.k <= 0. || p.c <= 0. then
    invalid_arg "Linear_baseline: parameters must be positive"

let stiffness p = function Increase -> p.a | Decrease -> p.b *. p.c

let char_poly p sub =
  let n = stiffness p sub in
  Poly.make [| n; p.k *. n; 1. |]

let open_loop p sub =
  let n = stiffness p sub in
  Tf.make [| n; n *. p.k |] [| 0.; 0.; 1. |]

let second_order p sub =
  let n = stiffness p sub in
  Lti2.make ~m:(p.k *. n) ~n

let routh_verdict p sub = Routh.analyze (char_poly p sub)
let nyquist_stable p sub = Nyquist.closed_loop_stable (open_loop p sub)

type report = {
  increase : Routh.verdict;
  decrease : Routh.verdict;
  increase_nyquist : bool;
  decrease_nyquist : bool;
  claims_stable : bool;
}

let analyze p =
  validate p;
  let increase = routh_verdict p Increase in
  let decrease = routh_verdict p Decrease in
  let increase_nyquist = nyquist_stable p Increase in
  let decrease_nyquist = nyquist_stable p Decrease in
  let is_stable = function Routh.Stable -> true | Routh.Unstable _ | Routh.Marginal -> false in
  {
    increase;
    decrease;
    increase_nyquist;
    decrease_nyquist;
    claims_stable = is_stable increase && is_stable decrease;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>increase subsystem: %a (Nyquist: %s)@,\
     decrease subsystem: %a (Nyquist: %s)@,\
     baseline verdict: %s@]"
    Routh.pp_verdict r.increase
    (if r.increase_nyquist then "stable" else "unstable")
    Routh.pp_verdict r.decrease
    (if r.decrease_nyquist then "stable" else "unstable")
    (if r.claims_stable then "STABLE (linear theory)" else "UNSTABLE")
