type verdict = Stable | Unstable of int | Marginal

let table p =
  let n = Numerics.Poly.degree p in
  if n < 1 then invalid_arg "Routh.table: degree < 1";
  if p.(n) = 0. then invalid_arg "Routh.table: zero leading coefficient";
  let width = (n / 2) + 1 in
  let rows = n + 1 in
  let t = Array.make_matrix rows width 0. in
  (* first two rows from the coefficients, highest degree first *)
  for j = 0 to width - 1 do
    let idx = n - (2 * j) in
    if idx >= 0 then t.(0).(j) <- p.(idx);
    let idx' = n - 1 - (2 * j) in
    if idx' >= 0 then t.(1).(j) <- p.(idx')
  done;
  for i = 2 to rows - 1 do
    let pivot =
      (* epsilon substitution when a first-column zero appears but the row
         is not entirely zero *)
      if t.(i - 1).(0) = 0. then 1e-12 else t.(i - 1).(0)
    in
    for j = 0 to width - 2 do
      t.(i).(j) <-
        ((pivot *. t.(i - 2).(j + 1)) -. (t.(i - 2).(0) *. t.(i - 1).(j + 1)))
        /. pivot
    done
  done;
  t

let analyze p =
  let n = Numerics.Poly.degree p in
  if n = 1 then begin
    (* s + c0/c1 = 0 *)
    let r = -.p.(0) /. p.(1) in
    if r < 0. then Stable else if r > 0. then Unstable 1 else Marginal
  end
  else begin
    let t = table p in
    let col = Array.map (fun row -> row.(0)) t in
    if Array.exists (fun v -> v = 0.) col then Marginal
    else begin
      let sign_changes = ref 0 in
      for i = 0 to Array.length col - 2 do
        if col.(i) *. col.(i + 1) < 0. then incr sign_changes
      done;
      if !sign_changes = 0 then Stable else Unstable !sign_changes
    end
  end

let is_stable p = match analyze p with Stable -> true | Unstable _ | Marginal -> false

let second_order c0 c1 = c0 > 0. && c1 > 0.
let third_order c0 c1 c2 = c0 > 0. && c1 > 0. && c2 > 0. && c1 *. c2 > c0

let pp_verdict ppf = function
  | Stable -> Format.pp_print_string ppf "stable"
  | Unstable k -> Format.fprintf ppf "unstable (%d RHP roots)" k
  | Marginal -> Format.pp_print_string ppf "marginal"
