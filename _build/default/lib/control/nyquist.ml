open Numerics

type curve = { ws : float array; res : float array; ims : float array }

let log_grid w_min w_max n =
  let l0 = log w_min and l1 = log w_max in
  Array.init n (fun i ->
      exp (l0 +. ((l1 -. l0) *. float_of_int i /. float_of_int (n - 1))))

let locus ?(w_min = 1e-4) ?(w_max = 1e6) ?(n = 4000) h =
  if w_min <= 0. || w_max <= w_min then invalid_arg "Nyquist.locus: bad range";
  let ws = log_grid w_min w_max n in
  let res = Array.make n 0. and ims = Array.make n 0. in
  Array.iteri
    (fun i w ->
      let re, im = Tf.response h w in
      res.(i) <- re;
      ims.(i) <- im)
    ws;
  { ws; res; ims }

(* Multiplicity of the pole at the origin = index of the lowest-order
   non-zero denominator coefficient. *)
let origin_pole_multiplicity h =
  let den = Tf.den h in
  let rec go i =
    if i >= Array.length den then 0 else if den.(i) <> 0. then i else go (i + 1)
  in
  go 0

let rhp_pole_count h =
  Tf.poles h
  |> List.filter (function
       | Poly.Real r -> r > 1e-9
       | Poly.Complex { re; _ } -> re > 1e-9)
  |> List.length

(* Unwrapped winding angle of L(j·w) + 1 along the full Nyquist contour:
   w from −w_max to −w_min (conjugate symmetry), a clockwise arc of m·π for
   the indentation around an origin pole of multiplicity m, then w from
   w_min to w_max. The closure at infinity contributes nothing for (strictly)
   proper L. *)
let winding ?(w_min = 1e-4) ?(w_max = 1e6) ?(n = 4000) h =
  let c = locus ~w_min ~w_max ~n h in
  let len = Array.length c.ws in
  let angle re im = atan2 im (re +. 1.) in
  let unwrap prev a =
    let two_pi = 2. *. Float.pi in
    let d = Float.rem (a -. Float.rem prev two_pi) two_pi in
    let d =
      if d > Float.pi then d -. two_pi
      else if d < -.Float.pi then d +. two_pi
      else d
    in
    prev +. d
  in
  (* negative frequencies: w from −w_max up to −w_min, i.e. traverse the
     conjugate locus from index n−1 down to 0 *)
  let theta = ref (angle c.res.(len - 1) (-.c.ims.(len - 1))) in
  let start = !theta in
  for i = len - 2 downto 0 do
    theta := unwrap !theta (angle c.res.(i) (-.c.ims.(i)))
  done;
  (* indentation around the origin poles: clockwise sweep of m·π *)
  let m = origin_pole_multiplicity h in
  theta := !theta -. (float_of_int m *. Float.pi);
  (* re-anchor the next segment's first point to the current unwrapped
     value: w from w_min to w_max *)
  let first_pos = angle c.res.(0) c.ims.(0) in
  theta := unwrap !theta first_pos;
  for i = 1 to len - 1 do
    theta := unwrap !theta (angle c.res.(i) c.ims.(i))
  done;
  (!theta -. start) /. (2. *. Float.pi)

let encirclements ?w_min ?w_max ?n h =
  let w = winding ?w_min ?w_max ?n h in
  (* clockwise encirclements = −(counter-clockwise winding number) *)
  -.w |> Float.round |> int_of_float

let closed_loop_stable ?w_min ?w_max ?n h =
  encirclements ?w_min ?w_max ?n h + rhp_pole_count h = 0

let gain_margin h =
  let c = locus h in
  let n = Array.length c.ws in
  let found = ref None in
  (* phase-crossover: Im crosses 0 with Re < −eps (ignore near the origin
     of the L-plane) *)
  for i = 0 to n - 2 do
    if !found = None then begin
      let im0 = c.ims.(i) and im1 = c.ims.(i + 1) in
      if im0 *. im1 <= 0. && im0 <> im1 && c.res.(i) < -1e-9 then begin
        let s = im0 /. (im0 -. im1) in
        let re = c.res.(i) +. (s *. (c.res.(i + 1) -. c.res.(i))) in
        if re < 0. then found := Some (1. /. Float.abs re)
      end
    end
  done;
  !found

let phase_margin h =
  let c = locus h in
  let n = Array.length c.ws in
  let mag i = sqrt ((c.res.(i) *. c.res.(i)) +. (c.ims.(i) *. c.ims.(i))) in
  let found = ref None in
  for i = 0 to n - 2 do
    if !found = None then begin
      let m0 = mag i -. 1. and m1 = mag (i + 1) -. 1. in
      if m0 *. m1 <= 0. && m0 <> m1 then begin
        let s = m0 /. (m0 -. m1) in
        let re = c.res.(i) +. (s *. (c.res.(i + 1) -. c.res.(i))) in
        let im = c.ims.(i) +. (s *. (c.ims.(i + 1) -. c.ims.(i))) in
        let phase_deg = atan2 im re *. 180. /. Float.pi in
        found := Some (180. +. phase_deg)
      end
    end
  done;
  !found
