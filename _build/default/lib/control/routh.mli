(** Routh–Hurwitz stability criterion.

    The paper's Proposition 1 applies this criterion to the characteristic
    equations (10)/(35) of the two BCN subsystems; this module implements
    the full Routh table for polynomials of any degree, plus the low-order
    closed forms used in the proofs. *)

type verdict =
  | Stable  (** all roots in the open left half-plane *)
  | Unstable of int  (** number of right-half-plane roots (sign changes) *)
  | Marginal  (** a zero appeared in the first column (imaginary-axis roots
                  or the epsilon method was needed) *)

(** [table p] — the Routh array for polynomial [p] (coefficients in
    ascending-degree order, as in {!Numerics.Poly}). Rows are ordered from
    the [s^n] row down to [s^0]. Raises [Invalid_argument] for degree < 1
    or a zero leading coefficient. *)
val table : Numerics.Poly.t -> float array array

(** [analyze p] — verdict from the first column of the Routh table. *)
val analyze : Numerics.Poly.t -> verdict

val is_stable : Numerics.Poly.t -> bool

(** [second_order c0 c1] — stability of [s² + c1·s + c0]: both coefficients
    strictly positive. This is the check behind Proposition 1. *)
val second_order : float -> float -> bool

(** [third_order c0 c1 c2] — stability of [s³ + c2·s² + c1·s + c0]:
    all positive and [c1·c2 > c0]. *)
val third_order : float -> float -> float -> bool

val pp_verdict : Format.formatter -> verdict -> unit
