open Numerics

type damping = Underdamped | Critically_damped | Overdamped

type t = { m : float; n : float }

let make ~m ~n =
  if m <= 0. || n <= 0. then invalid_arg "Lti2.make: need m > 0 and n > 0";
  { m; n }

let natural_frequency s = sqrt s.n
let damping_ratio s = s.m /. (2. *. sqrt s.n)
let discriminant s = (s.m *. s.m) -. (4. *. s.n)

let classify ?(eps = 1e-12) s =
  let d = discriminant s in
  let scale = Float.max 1. (Float.abs (4. *. s.n)) in
  if Float.abs d <= eps *. scale then Critically_damped
  else if d < 0. then Underdamped
  else Overdamped

let eigenvalues s =
  match Poly.roots_quadratic [| s.n; s.m; 1. |] with
  | Poly.Real l1, Poly.Real l2 -> Mat2.Real_pair (l1, l2)
  | Poly.Complex { re; im }, _ | _, Poly.Complex { re; im } ->
      Mat2.Complex_pair { re; im = Float.abs im }

let companion s = Mat2.make 0. 1. (-.s.n) (-.s.m)

let damped_frequency s =
  match classify s with
  | Underdamped ->
      let z = damping_ratio s in
      Some (natural_frequency s *. sqrt (1. -. (z *. z)))
  | Critically_damped | Overdamped -> None

let step_overshoot s =
  match classify s with
  | Underdamped ->
      let z = damping_ratio s in
      Some (exp (-.Float.pi *. z /. sqrt (1. -. (z *. z))))
  | Critically_damped | Overdamped -> None

let peak_time s = Option.map (fun wd -> Float.pi /. wd) (damped_frequency s)

let settling_time_2pct s = 4. /. (damping_ratio s *. natural_frequency s)

let solution s ~x0 ~v0 t =
  match eigenvalues s with
  | Mat2.Complex_pair { re = alpha; im = beta } ->
      (* x = e^{alpha t}(c1 cos beta t + c2 sin beta t) *)
      let c1 = x0 in
      let c2 = (v0 -. (alpha *. x0)) /. beta in
      let e = exp (alpha *. t) in
      let cb = cos (beta *. t) and sb = sin (beta *. t) in
      let x = e *. ((c1 *. cb) +. (c2 *. sb)) in
      let x' =
        e
        *. ((alpha *. ((c1 *. cb) +. (c2 *. sb)))
            +. (beta *. ((c2 *. cb) -. (c1 *. sb))))
      in
      (x, x')
  | Mat2.Real_pair (l1, l2) ->
      if Float.abs (l1 -. l2) <= 1e-12 *. Float.max 1. (Float.abs l1) then begin
        (* repeated root: x = (a3 + a4 t) e^{l t} *)
        let l = l1 in
        let a3 = x0 in
        let a4 = v0 -. (l *. x0) in
        let e = exp (l *. t) in
        ((a3 +. (a4 *. t)) *. e, (((a3 *. l) +. a4 +. (a4 *. l *. t)) *. e))
      end
      else begin
        let a1 = ((l2 *. x0) -. v0) /. (l2 -. l1) in
        let a2 = ((l1 *. x0) -. v0) /. (l1 -. l2) in
        let e1 = exp (l1 *. t) and e2 = exp (l2 *. t) in
        ((a1 *. e1) +. (a2 *. e2), (a1 *. l1 *. e1) +. (a2 *. l2 *. e2))
      end

let pp_damping ppf = function
  | Underdamped -> Format.pp_print_string ppf "underdamped"
  | Critically_damped -> Format.pp_print_string ppf "critically damped"
  | Overdamped -> Format.pp_print_string ppf "overdamped"
