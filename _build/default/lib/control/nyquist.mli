(** Nyquist analysis of an open-loop transfer function.

    The baseline analysis of the paper's ref. [4] derives subsystem
    stability conditions with the Nyquist criterion; we implement the
    criterion operationally: sample [L(j·w)], accumulate the winding angle
    of [L(j·w) + 1] over the full imaginary axis (using conjugate symmetry
    for negative frequencies), and compare encirclements of [-1] against
    the number of open-loop right-half-plane poles. *)

type curve = { ws : float array; res : float array; ims : float array }
(** Sampled Nyquist locus for [w > 0]. *)

val locus : ?w_min:float -> ?w_max:float -> ?n:int -> Tf.t -> curve
(** Logarithmically spaced samples of [L(j·w)], defaults
    [w_min=1e-4], [w_max=1e6], [n=4000]. *)

val encirclements : ?w_min:float -> ?w_max:float -> ?n:int -> Tf.t -> int
(** Net clockwise encirclements [N] of the point [-1] by the full locus
    (positive = clockwise). Open-loop imaginary-axis poles (e.g. the
    double integrator in the BCN loop) are handled by the usual
    small-semicircle indentation, approximated by starting at [w_min]. *)

val closed_loop_stable : ?w_min:float -> ?w_max:float -> ?n:int -> Tf.t -> bool
(** Nyquist criterion: [Z = N + P = 0] where [P] is the number of
    open-loop RHP poles and [N] the clockwise encirclements of [-1]. *)

val gain_margin : Tf.t -> float option
(** Gain margin [1/|L(j·w_pc)|] at the phase-crossover frequency
    (phase = −180°), if one exists in the scanned range. *)

val phase_margin : Tf.t -> float option
(** Phase margin in degrees at the gain-crossover frequency
    ([|L| = 1]), if one exists in the scanned range. *)
