(** Rational transfer functions [H(s) = num(s) / den(s)].

    Supports the frequency-domain view of the BCN loop used by the
    linear-analysis baseline (ref. [4] of the paper): the open-loop
    transfer of each subsystem is [L(s) = g·(k·s + 1)/s²]. *)

type t = private { num : Numerics.Poly.t; den : Numerics.Poly.t }

(** [make num den] — raises [Invalid_argument] if [den] is the zero
    polynomial. *)
val make : Numerics.Poly.t -> Numerics.Poly.t -> t

val num : t -> Numerics.Poly.t
val den : t -> Numerics.Poly.t

val gain : float -> t
(** Constant transfer function. *)

val integrator : t
(** [1/s]. *)

val mul : t -> t -> t
val add : t -> t -> t
val scale : float -> t -> t

val feedback : t -> t
(** Unity negative feedback: [L/(1+L)]. *)

val poles : t -> Numerics.Poly.root list
val zeros : t -> Numerics.Poly.root list

val response : t -> float -> float * float
(** [response h w] — the complex value [H(j·w)] as [(re, im)]. *)

val magnitude : t -> float -> float
val phase : t -> float -> float
(** Phase in radians, from [atan2]. *)

val is_stable : t -> bool
(** All poles strictly in the left half-plane (Routh on the denominator). *)

val char_poly_closed_loop : t -> Numerics.Poly.t
(** [num + den] — the closed-loop characteristic polynomial under unity
    negative feedback. *)

val pp : Format.formatter -> t -> unit
