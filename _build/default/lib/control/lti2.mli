(** Second-order LTI systems in standard form.

    Each BCN subsystem linearizes to [x'' + m·x' + n·x = 0] (paper eqn
    (10)), i.e. natural frequency [wn = sqrt n] and damping ratio
    [zeta = m / (2·sqrt n)]. The paper's case split on the discriminant
    [m² − 4n] is exactly the damping classification below. *)

type damping =
  | Underdamped  (** [zeta < 1]: complex pair — spiral (paper Case 1) *)
  | Critically_damped  (** [zeta = 1] — paper Case 5 boundary *)
  | Overdamped  (** [zeta > 1]: two real roots — node (paper Cases 2–4) *)

type t = private {
  m : float;  (** damping coefficient, must be > 0 *)
  n : float;  (** stiffness, must be > 0 *)
}

val make : m:float -> n:float -> t
(** Raises [Invalid_argument] unless [m > 0] and [n > 0]. *)

val natural_frequency : t -> float
val damping_ratio : t -> float
val discriminant : t -> float
val classify : ?eps:float -> t -> damping

val eigenvalues : t -> Numerics.Mat2.eigenvalues
(** Roots of [l² + m·l + n = 0]. *)

val companion : t -> Numerics.Mat2.t
(** Companion matrix of the system in [(x, x')] coordinates. *)

val damped_frequency : t -> float option
(** [wd = wn·sqrt(1−zeta²)] when underdamped. *)

val step_overshoot : t -> float option
(** Fractional overshoot of the unit step response,
    [exp(−pi·zeta/sqrt(1−zeta²))], when underdamped (else 0 overshoot,
    reported as [None]). *)

val peak_time : t -> float option
(** [pi / wd] when underdamped. *)

val settling_time_2pct : t -> float
(** [4 / (zeta·wn)] — the standard 2%% settling-time estimate. *)

val solution :
  t -> x0:float -> v0:float -> float -> float * float
(** Exact homogeneous solution [(x t, x' t)] from initial conditions,
    valid in all three damping regimes. *)

val pp_damping : Format.formatter -> damping -> unit
