open Numerics

type t = { num : Poly.t; den : Poly.t }

let make num den =
  let num = Poly.make num and den = Poly.make den in
  if Poly.degree den = 0 && den.(0) = 0. then
    invalid_arg "Tf.make: zero denominator";
  { num; den }

let num h = h.num
let den h = h.den
let gain g = make [| g |] [| 1. |]
let integrator = make [| 1. |] [| 0.; 1. |]
let mul a b = make (Poly.mul a.num b.num) (Poly.mul a.den b.den)

let add a b =
  make
    (Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den))
    (Poly.mul a.den b.den)

let scale s h = make (Poly.scale s h.num) h.den
let feedback l = make l.num (Poly.add l.den l.num)
let poles h = Poly.roots h.den
let zeros h = if Poly.degree h.num >= 1 then Poly.roots h.num else []

let response h w =
  let s = (0., w) in
  let nr, ni = Poly.eval_complex h.num s in
  let dr, di = Poly.eval_complex h.den s in
  let d2 = (dr *. dr) +. (di *. di) in
  (((nr *. dr) +. (ni *. di)) /. d2, ((ni *. dr) -. (nr *. di)) /. d2)

let magnitude h w =
  let re, im = response h w in
  sqrt ((re *. re) +. (im *. im))

let phase h w =
  let re, im = response h w in
  atan2 im re

let is_stable h = Routh.is_stable h.den

let char_poly_closed_loop l = Poly.add l.den l.num

let pp ppf h = Format.fprintf ppf "(%a) / (%a)" Poly.pp h.num Poly.pp h.den
