lib/control/tf.ml: Array Format Numerics Poly Routh
