lib/control/linear_baseline.ml: Format Lti2 Numerics Nyquist Poly Routh Tf
