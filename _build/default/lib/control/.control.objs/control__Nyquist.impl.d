lib/control/nyquist.ml: Array Float List Numerics Poly Tf
