lib/control/routh.ml: Array Format Numerics
