lib/control/routh.mli: Format Numerics
