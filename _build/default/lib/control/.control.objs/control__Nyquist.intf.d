lib/control/nyquist.mli: Tf
