lib/control/lti2.ml: Float Format Mat2 Numerics Option Poly
