lib/control/linear_baseline.mli: Format Lti2 Numerics Routh Tf
