lib/control/lti2.mli: Format Numerics
