lib/control/tf.mli: Format Numerics
