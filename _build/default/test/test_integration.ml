(* Cross-module integration tests: the fluid model against the packet
   simulator (experiment V1), the warm-up law against both, the full
   Analysis engine end to end, and smoke coverage of every figure
   generator. These are the slowest tests in the suite. *)

open Numerics

(* ---------------- V1: fluid vs packet ---------------- *)

let test_fluid_vs_packet_agreement () =
  let p = Dcecc_core.Compare.validation_params in
  let r = Dcecc_core.Compare.fluid_vs_packet p in
  (* shape agreement: the packet queue settles near q0 like the fluid
     model; RMSE within 20% of q0 and both tails near the reference *)
  Alcotest.(check bool)
    (Printf.sprintf "rmse/q0 = %.3f < 0.2" r.Dcecc_core.Compare.rmse_rel_q0)
    true
    (r.Dcecc_core.Compare.rmse_rel_q0 < 0.2);
  Alcotest.(check bool) "no drops" true (r.Dcecc_core.Compare.packet_drops = 0);
  Alcotest.(check bool) "packet tail near q0" true
    (Float.abs (r.Dcecc_core.Compare.packet_mean_tail -. p.Fluid.Params.q0)
     < 0.25 *. p.Fluid.Params.q0);
  Alcotest.(check bool) "fluid tail near q0" true
    (Float.abs (r.Dcecc_core.Compare.fluid_mean_tail -. p.Fluid.Params.q0)
     < 0.1 *. p.Fluid.Params.q0);
  Alcotest.(check bool) "high utilization" true
    (r.Dcecc_core.Compare.utilization > 0.9)

let test_warmup_law_packet_level () =
  (* the fluid warm-up T0 = (C - N mu)/(a q0) predicts when the packet
     system first fills the queue (same order of magnitude; the packet
     system senses sigma only at sampling instants) *)
  let p = Dcecc_core.Compare.validation_params in
  let t0 = Fluid.Model.warmup_duration p in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:(10. *. t0)
         ~sample_dt:(t0 /. 50.) p)
      with
      Simnet.Runner.broadcast_feedback = true;
      sampling = Simnet.Switch.Timer (Simnet.Switch.fluid_sampling_period p);
      initial_rate = p.Fluid.Params.mu;
      enable_pause = false;
    }
  in
  let r = Simnet.Runner.run cfg in
  (* time at which the aggregate rate first reaches 90% of capacity *)
  let t_fill =
    match
      Series.crossings ~level:(0.9 *. p.Fluid.Params.capacity)
        r.Simnet.Runner.agg_rate
    with
    | t :: _ -> t
    | [] -> infinity
  in
  Alcotest.(check bool)
    (Printf.sprintf "ramp-up %.4g within 4x of T0 %.4g" t_fill t0)
    true
    (t_fill < 4. *. t0)

let test_overflow_prediction_consistency () =
  (* the three layers agree that the draft parameters overflow the BDP
     buffer: Theorem 1, the clamped fluid simulation, the packet system *)
  let p = Fluid.Params.default in
  Alcotest.(check bool) "Theorem 1 fails" false (Fluid.Criterion.satisfied p);
  let ph = Fluid.Model.simulate_physical ~h:1e-6 ~t_end:0.01 p in
  Alcotest.(check bool) "fluid drops" true (ph.Fluid.Model.dropped_bits > 0.);
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:0.01 p) with
      Simnet.Runner.mode = Simnet.Source.Literal;
      enable_pause = false;
      initial_rate = Fluid.Params.equilibrium_rate p;
    }
  in
  let r = Simnet.Runner.run cfg in
  Alcotest.(check bool) "packet drops" true (r.Simnet.Runner.drops > 0)

let test_sized_buffer_consistency () =
  (* and that the Theorem-1 buffer removes the loss in all three layers *)
  let p =
    Fluid.Params.with_buffer Fluid.Params.default
      (1.1 *. Fluid.Criterion.required_buffer Fluid.Params.default)
  in
  Alcotest.(check bool) "Theorem 1 holds" true (Fluid.Criterion.satisfied p);
  let ph = Fluid.Model.simulate_physical ~h:1e-6 ~t_end:0.01 p in
  Alcotest.(check (float 0.)) "no fluid drops" 0. ph.Fluid.Model.dropped_bits;
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:0.01 p) with
      Simnet.Runner.mode = Simnet.Source.Literal;
      enable_pause = false;
      initial_rate = Fluid.Params.equilibrium_rate p;
    }
  in
  let r = Simnet.Runner.run cfg in
  Alcotest.(check int) "no packet drops" 0 r.Simnet.Runner.drops

(* ---------------- Analysis engine end to end ---------------- *)

let test_analysis_cases_consistent () =
  List.iter
    (fun (p, expected) ->
      let r = Dcecc_core.Analysis.run p in
      Alcotest.(check bool) "case" true (r.Dcecc_core.Analysis.case = expected))
    [
      (Fluid.Params.default, Fluid.Cases.Case1);
      (Dcecc_core.Figures.case2_params, Fluid.Cases.Case2);
      (Dcecc_core.Figures.case3_params, Fluid.Cases.Case3);
      (Dcecc_core.Figures.case4_params, Fluid.Cases.Case4);
    ]

let test_analysis_exit_contract () =
  (* the report's strongly_stable bit drives the CLI exit status; check
     both polarities *)
  let bad = Dcecc_core.Analysis.run Fluid.Params.default in
  Alcotest.(check bool) "draft+BDP unstable" false
    bad.Dcecc_core.Analysis.stability.Fluid.Stability.strongly_stable;
  let good =
    Dcecc_core.Analysis.run
      (Fluid.Params.with_buffer Fluid.Params.default 16e6)
  in
  Alcotest.(check bool) "sized stable" true
    good.Dcecc_core.Analysis.stability.Fluid.Stability.strongly_stable

(* ---------------- Figures smoke coverage ---------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_figures_fast_generators () =
  (* every pure-analytic figure renders non-trivially *)
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool) (name ^ " non-empty") true (String.length text > 200))
    [
      ("fig4", Dcecc_core.Figures.fig4_spiral ());
      ("fig5", Dcecc_core.Figures.fig5_node ());
      ("fig6", Dcecc_core.Figures.fig6_case1 ());
      ("fig9", Dcecc_core.Figures.fig9_case3 ());
      ("fig10", Dcecc_core.Figures.fig10_case4 ());
      ("t1", Dcecc_core.Figures.t1_criterion ());
    ]

let test_t1_reproduces_paper_numbers () =
  let text = Dcecc_core.Figures.t1_criterion () in
  Alcotest.(check bool) "13.81M present" true (contains ~needle:"13.81M" text);
  Alcotest.(check bool) "2.76x ratio present" true (contains ~needle:"2.76x" text)

let test_fig7_finds_genuine_cycle () =
  let sys, s0 = Dcecc_core.Figures.genuine_limit_cycle_system () in
  let sec =
    Phaseplane.Poincare.line_section ~dir:Ode.Up ~normal:(Vec2.make 1. 0.1) ()
  in
  match Phaseplane.Limit_cycle.detect ~max_iters:400 sys sec ~s0 with
  | Phaseplane.Limit_cycle.Cycle { multiplier = Some m; stable = Some true; _ } ->
      Alcotest.(check bool) "orbitally stable" true (m < 1.)
  | _ -> Alcotest.fail "expected an orbitally stable cycle"

let test_figures_csv_output () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dcecc_fig_test" in
  ignore (Dcecc_core.Figures.fig4_spiral ~out:dir ());
  Alcotest.(check bool) "csv written" true
    (Sys.file_exists (Filename.concat dir "fig4_spiral_1.csv"));
  let ic = open_in (Filename.concat dir "fig4_spiral_1.csv") in
  let header = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "t,x,y" header

(* ---------------- Ablation: solver choices ---------------- *)

let test_ablation_event_localization_matters () =
  (* integrating the switched system WITHOUT event localization (plain
     coarse fixed-step) misplaces the overshoot; the event-aware adaptive
     integration agrees with the semi-analytic flow map on the
     piecewise-linear system *)
  let p = Fluid.Params.default in
  let sys = Fluid.Linearized.system p in
  let exact =
    match Fluid.Flowmap.first_overshoot p with
    | Some v -> v
    | None -> Alcotest.fail "no overshoot"
  in
  let adaptive =
    Phaseplane.Trajectory.integrate ~t_max:0.002 sys (Fluid.Model.start_point p)
  in
  let err_adaptive =
    Float.abs (Phaseplane.Trajectory.x_max adaptive -. exact) /. exact
  in
  let coarse =
    Phaseplane.Trajectory.integrate
      ~solver:(Phaseplane.Trajectory.Fixed (Ode.Euler, 2e-5))
      ~t_max:0.002 sys (Fluid.Model.start_point p)
  in
  let err_coarse =
    Float.abs (Phaseplane.Trajectory.x_max coarse -. exact) /. exact
  in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.2e much better than coarse Euler %.2e"
       err_adaptive err_coarse)
    true
    (err_adaptive < 1e-4 && err_coarse > 10. *. err_adaptive)

let test_ablation_rk4_vs_adaptive () =
  (* fixed RK4 with a sane step agrees with the adaptive solver *)
  let p = Fluid.Params.default in
  let sys = Fluid.Model.normalized_system p in
  let a =
    Phaseplane.Trajectory.integrate ~t_max:0.002 sys (Fluid.Model.start_point p)
  in
  let b =
    Phaseplane.Trajectory.integrate
      ~solver:(Phaseplane.Trajectory.Fixed (Ode.Rk4, 1e-7))
      ~t_max:0.002 sys (Fluid.Model.start_point p)
  in
  let ma = Phaseplane.Trajectory.x_max a and mb = Phaseplane.Trajectory.x_max b in
  Alcotest.(check bool) "solvers agree on overshoot" true
    (Float.abs (ma -. mb) < 1e-3 *. ma)

let () =
  Alcotest.run "integration"
    [
      ( "fluid-vs-packet",
        [
          Alcotest.test_case "V1 agreement" `Slow test_fluid_vs_packet_agreement;
          Alcotest.test_case "warmup law" `Slow test_warmup_law_packet_level;
          Alcotest.test_case "overflow consistency" `Slow
            test_overflow_prediction_consistency;
          Alcotest.test_case "sized-buffer consistency" `Slow
            test_sized_buffer_consistency;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "cases" `Quick test_analysis_cases_consistent;
          Alcotest.test_case "exit contract" `Quick test_analysis_exit_contract;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fast generators" `Slow test_figures_fast_generators;
          Alcotest.test_case "paper numbers" `Quick test_t1_reproduces_paper_numbers;
          Alcotest.test_case "genuine cycle" `Quick test_fig7_finds_genuine_cycle;
          Alcotest.test_case "csv output" `Quick test_figures_csv_output;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "event localization" `Quick
            test_ablation_event_localization_matters;
          Alcotest.test_case "rk4 vs adaptive" `Slow test_ablation_rk4_vs_adaptive;
        ] );
    ]
