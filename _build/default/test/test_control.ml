(* Tests for the classical-control baseline: Routh–Hurwitz, transfer
   functions, Nyquist, second-order closed forms, and the ref-[4]-style
   linear analysis of the BCN loop. *)

open Numerics

let checkf eps = Alcotest.(check (float eps))

(* ---------------- Routh ---------------- *)

let test_routh_stable_cubic () =
  let p = Poly.of_roots [ -1.; -2.; -3. ] in
  Alcotest.(check bool) "stable" true (Control.Routh.is_stable p)

let test_routh_unstable_counts () =
  let p = Poly.of_roots [ 1.; -2.; 3. ] in
  (match Control.Routh.analyze p with
  | Control.Routh.Unstable k -> Alcotest.(check int) "two RHP" 2 k
  | _ -> Alcotest.fail "expected unstable");
  let p = Poly.of_roots [ 1.; -2.; -3. ] in
  match Control.Routh.analyze p with
  | Control.Routh.Unstable k -> Alcotest.(check int) "one RHP" 1 k
  | _ -> Alcotest.fail "expected unstable"

let test_routh_marginal () =
  match Control.Routh.analyze [| 1.; 0.; 1. |] with
  | Control.Routh.Marginal -> ()
  | Control.Routh.Stable -> Alcotest.fail "marginal reported stable"
  | Control.Routh.Unstable _ -> Alcotest.fail "marginal reported unstable"

let test_routh_first_order () =
  Alcotest.(check bool) "s+2 stable" true (Control.Routh.is_stable [| 2.; 1. |]);
  Alcotest.(check bool) "s-2 unstable" false (Control.Routh.is_stable [| -2.; 1. |])

let test_routh_low_order_closed_forms () =
  Alcotest.(check bool) "2nd order" true (Control.Routh.second_order 3. 4.);
  Alcotest.(check bool) "2nd order neg" false (Control.Routh.second_order (-1.) 4.);
  Alcotest.(check bool) "3rd order" true (Control.Routh.third_order 4. 3. 2.);
  Alcotest.(check bool) "3rd order unstable" false
    (Control.Routh.third_order 10. 1. 1.)

let prop_routh_matches_roots =
  QCheck.Test.make ~name:"Routh verdict matches actual roots (degree 4)"
    ~count:300
    QCheck.(
      quad (float_range (-4.) 4.) (float_range (-4.) 4.) (float_range (-4.) 4.)
        (float_range (-4.) 4.))
    (fun (r1, r2, r3, r4) ->
      let rs = [ r1; r2; r3; r4 ] in
      QCheck.assume (List.for_all (fun r -> Float.abs r > 0.05) rs);
      let p = Poly.of_roots rs in
      let expected_stable = List.for_all (fun r -> r < 0.) rs in
      Control.Routh.is_stable p = expected_stable)

(* ---------------- Tf ---------------- *)

let test_tf_response () =
  let h = Control.Tf.make [| 1. |] [| 1.; 1. |] in
  checkf 1e-12 "magnitude" (1. /. sqrt 2.) (Control.Tf.magnitude h 1.);
  checkf 1e-12 "phase" (-.Float.pi /. 4.) (Control.Tf.phase h 1.)

let test_tf_algebra () =
  let a = Control.Tf.make [| 1. |] [| 1.; 1. |] in
  let b = Control.Tf.make [| 1.; 1. |] [| 1. |] in
  let prod = Control.Tf.mul a b in
  checkf 1e-12 "mul response" 1. (Control.Tf.magnitude prod 3.7);
  let s = Control.Tf.add a a in
  checkf 1e-12 "add response" (2. /. sqrt 2.) (Control.Tf.magnitude s 1.)

let test_tf_feedback () =
  let l = Control.Tf.make [| 10. |] [| 0.; 1. |] in
  let cl = Control.Tf.feedback l in
  checkf 1e-9 "dc gain" 1. (Control.Tf.magnitude cl 1e-6);
  match Control.Tf.poles cl with
  | [ Poly.Real p ] -> checkf 1e-9 "pole" (-10.) p
  | _ -> Alcotest.fail "expected single real pole"

let test_tf_stability () =
  Alcotest.(check bool) "1/(s+1) stable" true
    (Control.Tf.is_stable (Control.Tf.make [| 1. |] [| 1.; 1. |]));
  Alcotest.(check bool) "1/(s-1) unstable" false
    (Control.Tf.is_stable (Control.Tf.make [| 1. |] [| -1.; 1. |]))

let test_tf_closed_loop_char_poly () =
  let n = 7. and k = 0.3 in
  let l = Control.Tf.make [| n; n *. k |] [| 0.; 0.; 1. |] in
  let cp = Control.Tf.char_poly_closed_loop l in
  checkf 1e-12 "c0" n cp.(0);
  checkf 1e-12 "c1" (n *. k) cp.(1);
  checkf 1e-12 "c2" 1. cp.(2)

(* ---------------- Nyquist ---------------- *)

let test_nyquist_stable_first_order () =
  let l = Control.Tf.make [| 1. |] [| 1.; 1. |] in
  Alcotest.(check int) "no encirclement" 0 (Control.Nyquist.encirclements l);
  Alcotest.(check bool) "closed-loop stable" true
    (Control.Nyquist.closed_loop_stable l)

let test_nyquist_rhp_pole_compensated () =
  let l = Control.Tf.make [| 2. |] [| -1.; 1. |] in
  Alcotest.(check int) "one CCW encirclement" (-1)
    (Control.Nyquist.encirclements l);
  Alcotest.(check bool) "closed-loop stable" true
    (Control.Nyquist.closed_loop_stable l)

let test_nyquist_unstable_closed_loop () =
  let l = Control.Tf.make [| 0.5 |] [| -1.; 1. |] in
  Alcotest.(check bool) "closed-loop unstable" false
    (Control.Nyquist.closed_loop_stable l)

let test_nyquist_double_integrator_loop () =
  let l = Control.Tf.make [| 4.; 4. *. 0.5 |] [| 0.; 0.; 1. |] in
  Alcotest.(check bool) "BCN-shaped loop stable" true
    (Control.Nyquist.closed_loop_stable l)

let test_nyquist_margins () =
  (* L = 4/((s+1)^3): phase crossover at w = sqrt 3 where |L| = 1/2,
     so the gain margin is 2 *)
  let den = Poly.of_roots [ -1.; -1.; -1. ] in
  let l = Control.Tf.make [| 4. |] den in
  (match Control.Nyquist.gain_margin l with
  | Some gm -> checkf 1e-2 "gain margin" 2. gm
  | None -> Alcotest.fail "no gain margin found");
  match Control.Nyquist.phase_margin l with
  | Some pm -> Alcotest.(check bool) "positive phase margin" true (pm > 0.)
  | None -> Alcotest.fail "no phase margin found"

(* ---------------- Lti2 ---------------- *)

let test_lti2_classification () =
  let open Control.Lti2 in
  Alcotest.(check bool) "underdamped" true
    (classify (make ~m:1. ~n:25.) = Underdamped);
  Alcotest.(check bool) "overdamped" true
    (classify (make ~m:11. ~n:25.) = Overdamped);
  Alcotest.(check bool) "critical" true
    (classify (make ~m:10. ~n:25.) = Critically_damped)

let test_lti2_constants () =
  let s = Control.Lti2.make ~m:2. ~n:25. in
  checkf 1e-12 "wn" 5. (Control.Lti2.natural_frequency s);
  checkf 1e-12 "zeta" 0.2 (Control.Lti2.damping_ratio s);
  (match Control.Lti2.damped_frequency s with
  | Some wd -> checkf 1e-12 "wd" (5. *. sqrt (1. -. 0.04)) wd
  | None -> Alcotest.fail "underdamped must have wd");
  match Control.Lti2.step_overshoot s with
  | Some mp ->
      checkf 1e-12 "overshoot" (exp (-.Float.pi *. 0.2 /. sqrt 0.96)) mp
  | None -> Alcotest.fail "underdamped must overshoot"

let test_lti2_solution_vs_ode () =
  List.iter
    (fun (m, n) ->
      let s = Control.Lti2.make ~m ~n in
      let f _t y = [| y.(1); (-.n *. y.(0)) -. (m *. y.(1)) |] in
      let sol =
        Ode.solve_fixed ~method_:Ode.Rk4 ~h:1e-4 ~t_end:2. f ~t0:0.
          ~y0:[| 1.; -0.5 |]
      in
      let yn = sol.Ode.ys.(Array.length sol.Ode.ys - 1) in
      let x, v = Control.Lti2.solution s ~x0:1. ~v0:(-0.5) 2. in
      checkf 1e-6 (Printf.sprintf "x (m=%g)" m) yn.(0) x;
      checkf 1e-6 (Printf.sprintf "v (m=%g)" m) yn.(1) v)
    [ (1., 25.); (11., 25.); (10., 25.) ]

let test_lti2_companion_consistency () =
  let s = Control.Lti2.make ~m:3. ~n:7. in
  let j = Control.Lti2.companion s in
  let c0, c1 = Mat2.char_poly j in
  checkf 1e-12 "det = n" 7. c0;
  checkf 1e-12 "-trace = m" 3. c1

(* ---------------- Linear_baseline ---------------- *)

let bcn_loop =
  { Control.Linear_baseline.a = 1.6e9; b = 1. /. 128.; k = 2e-8; c = 1e10 }

let test_baseline_char_polys () =
  let p_inc =
    Control.Linear_baseline.char_poly bcn_loop Control.Linear_baseline.Increase
  in
  checkf 1. "n1 = a" 1.6e9 p_inc.(0);
  checkf 1e-6 "m1 = ka" (2e-8 *. 1.6e9) p_inc.(1);
  let p_dec =
    Control.Linear_baseline.char_poly bcn_loop Control.Linear_baseline.Decrease
  in
  checkf 1. "n2 = bC" (1e10 /. 128.) p_dec.(0)

let test_baseline_proposition1 () =
  let r = Control.Linear_baseline.analyze bcn_loop in
  Alcotest.(check bool) "claims stable" true
    r.Control.Linear_baseline.claims_stable;
  Alcotest.(check bool) "nyquist agrees (increase)" true
    r.Control.Linear_baseline.increase_nyquist;
  Alcotest.(check bool) "nyquist agrees (decrease)" true
    r.Control.Linear_baseline.decrease_nyquist

let test_baseline_rejects_nonpositive () =
  Alcotest.(check bool) "rejects zero gain" true
    (try
       ignore
         (Control.Linear_baseline.analyze
            { bcn_loop with Control.Linear_baseline.a = 0. });
       false
     with Invalid_argument _ -> true)

let prop_baseline_always_stable =
  QCheck.Test.make
    ~name:"Proposition 1: Routh says stable for all positive parameters"
    ~count:200
    QCheck.(
      quad (float_range 1e3 1e12) (float_range 1e-4 1.)
        (float_range 1e-10 1e-4) (float_range 1e8 1e11))
    (fun (a, b, k, c) ->
      let lp = { Control.Linear_baseline.a; b; k; c } in
      let stable sub =
        match Control.Linear_baseline.routh_verdict lp sub with
        | Control.Routh.Stable -> true
        | Control.Routh.Unstable _ | Control.Routh.Marginal -> false
      in
      stable Control.Linear_baseline.Increase
      && stable Control.Linear_baseline.Decrease)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "control"
    [
      ( "routh",
        [
          Alcotest.test_case "stable cubic" `Quick test_routh_stable_cubic;
          Alcotest.test_case "unstable counts" `Quick test_routh_unstable_counts;
          Alcotest.test_case "marginal" `Quick test_routh_marginal;
          Alcotest.test_case "first order" `Quick test_routh_first_order;
          Alcotest.test_case "closed forms" `Quick
            test_routh_low_order_closed_forms;
        ] );
      qsuite "routh-props" [ prop_routh_matches_roots ];
      ( "tf",
        [
          Alcotest.test_case "response" `Quick test_tf_response;
          Alcotest.test_case "algebra" `Quick test_tf_algebra;
          Alcotest.test_case "feedback" `Quick test_tf_feedback;
          Alcotest.test_case "stability" `Quick test_tf_stability;
          Alcotest.test_case "closed-loop char poly" `Quick
            test_tf_closed_loop_char_poly;
        ] );
      ( "nyquist",
        [
          Alcotest.test_case "stable first order" `Quick
            test_nyquist_stable_first_order;
          Alcotest.test_case "RHP pole compensated" `Quick
            test_nyquist_rhp_pole_compensated;
          Alcotest.test_case "unstable closed loop" `Quick
            test_nyquist_unstable_closed_loop;
          Alcotest.test_case "double-integrator loop" `Quick
            test_nyquist_double_integrator_loop;
          Alcotest.test_case "margins" `Quick test_nyquist_margins;
        ] );
      ( "lti2",
        [
          Alcotest.test_case "classification" `Quick test_lti2_classification;
          Alcotest.test_case "constants" `Quick test_lti2_constants;
          Alcotest.test_case "solution vs ODE" `Quick test_lti2_solution_vs_ode;
          Alcotest.test_case "companion" `Quick test_lti2_companion_consistency;
        ] );
      ( "linear-baseline",
        [
          Alcotest.test_case "char polys" `Quick test_baseline_char_polys;
          Alcotest.test_case "Proposition 1" `Quick test_baseline_proposition1;
          Alcotest.test_case "validation" `Quick
            test_baseline_rejects_nonpositive;
        ] );
      qsuite "baseline-props" [ prop_baseline_always_stable ];
    ]
