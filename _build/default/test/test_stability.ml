(* Strong-stability analysis: Definition 1, Propositions 2–4, Theorem 1
   and the Analysis engine. These tests check the paper's logical
   structure: the criterion implies the measured behaviour, the linear
   baseline is blind to it, and the case taxonomy matches the verdicts. *)

let default = Fluid.Params.default

let big = Fluid.Params.with_buffer default (2. *. Fluid.Criterion.required_buffer default)

let test_first_excursion_shape () =
  let mx, mn = Fluid.Stability.first_excursion default in
  (* overshoot positive, undershoot negative but above -q0 for the
     nonlinear system at draft parameters *)
  Alcotest.(check bool) "overshoot positive" true (mx > 0.);
  Alcotest.(check bool) "undershoot negative" true (mn < 0.);
  Alcotest.(check bool) "undershoot above -q0" true (mn > -.default.Fluid.Params.q0)

let test_verdict_draft_params () =
  let v = Fluid.Stability.analyze default in
  Alcotest.(check bool) "Case 1" true (v.Fluid.Stability.case = Fluid.Cases.Case1);
  Alcotest.(check bool) "not strongly stable at BDP" false
    v.Fluid.Stability.strongly_stable;
  Alcotest.(check bool) "overflow margin negative" true
    (v.Fluid.Stability.overflow_margin < 0.);
  match v.Fluid.Stability.analytic_strongly_stable with
  | Some b -> Alcotest.(check bool) "Proposition 2 fails too" false b
  | None -> Alcotest.fail "Case 1 must evaluate Proposition 2"

let test_verdict_sized_buffer () =
  let v = Fluid.Stability.analyze big in
  Alcotest.(check bool) "strongly stable" true v.Fluid.Stability.strongly_stable;
  Alcotest.(check bool) "positive margins" true
    (v.Fluid.Stability.overflow_margin > 0.
     && v.Fluid.Stability.underflow_margin > 0.)

let test_propositions_case_gating () =
  Alcotest.(check bool) "prop2 only in case 1" true
    (Fluid.Stability.proposition2 default <> None);
  Alcotest.(check bool) "prop3 not in case 1" true
    (Fluid.Stability.proposition3 default = None);
  Alcotest.(check bool) "prop4 not in case 1" true
    (Fluid.Stability.proposition4 default = None);
  let c2 = Dcecc_core.Figures.case2_params in
  Alcotest.(check bool) "prop3 in case 2" true
    (Fluid.Stability.proposition3 c2 <> None);
  let c3 = Dcecc_core.Figures.case3_params in
  Alcotest.(check bool) "prop4 in case 3" true
    (Fluid.Stability.proposition4 c3 = Some true)

let test_cases_3_4_no_overshoot () =
  (* the paper's claim: Cases 3 and 4 never overshoot the reference *)
  List.iter
    (fun p ->
      let v = Fluid.Stability.analyze p in
      Alcotest.(check bool) "no overshoot above q0" true
        (v.Fluid.Stability.numeric_max <= 1e-3 *. p.Fluid.Params.q0))
    [ Dcecc_core.Figures.case3_params; Dcecc_core.Figures.case4_params ]

let test_theorem1_implies_numeric_stability () =
  (* sweep buffers around the criterion boundary: whenever Theorem 1 is
     satisfied the measured trajectory must stay inside the buffer *)
  List.iter
    (fun factor ->
      let p =
        Fluid.Params.with_buffer default
          (factor *. Fluid.Criterion.required_buffer default)
      in
      if Fluid.Criterion.satisfied p then begin
        let v = Fluid.Stability.analyze p in
        Alcotest.(check bool)
          (Printf.sprintf "B = %.2fx required -> stable" factor)
          true v.Fluid.Stability.strongly_stable
      end)
    [ 1.01; 1.2; 1.5; 2.; 3. ]

let test_theorem1_conservative_not_tight () =
  (* the criterion is sufficient, not necessary: the nonlinear system is
     already strongly stable somewhat below the bound (the linearization
     overestimates the decrease-phase overshoot) *)
  let p = Fluid.Params.with_buffer default 8e6 in
  Alcotest.(check bool) "criterion not satisfied" false
    (Fluid.Criterion.satisfied p);
  let v = Fluid.Stability.analyze p in
  Alcotest.(check bool) "yet numerically stable" true
    v.Fluid.Stability.strongly_stable

let test_baseline_blindness () =
  (* the paper's core argument (experiment V2): linear theory approves
     configurations that overflow *)
  let rows = Dcecc_core.Compare.linear_vs_strong Dcecc_core.Compare.default_sweep in
  List.iter
    (fun (r : Dcecc_core.Compare.linear_vs_strong_row) ->
      Alcotest.(check bool)
        (r.Dcecc_core.Compare.label ^ ": linear says stable") true
        r.Dcecc_core.Compare.linear_stable)
    rows;
  let bdp = List.find (fun r -> r.Dcecc_core.Compare.label = "B = BDP (paper)") rows in
  Alcotest.(check bool) "BDP config not strongly stable" false
    bdp.Dcecc_core.Compare.numeric_strongly_stable;
  let ok = List.find (fun r -> r.Dcecc_core.Compare.label = "B = 1.5x required") rows in
  Alcotest.(check bool) "1.5x required is strongly stable" true
    ok.Dcecc_core.Compare.numeric_strongly_stable

let test_analysis_report () =
  let r = Dcecc_core.Analysis.run big in
  Alcotest.(check bool) "criterion ok" true r.Dcecc_core.Analysis.criterion_ok;
  Alcotest.(check bool) "focus kinds" true
    (r.Dcecc_core.Analysis.increase_kind = Phaseplane.Singular.Stable_focus
     && r.Dcecc_core.Analysis.decrease_kind = Phaseplane.Singular.Stable_focus);
  Alcotest.(check bool) "baseline stable" true
    r.Dcecc_core.Analysis.baseline.Control.Linear_baseline.claims_stable;
  (match r.Dcecc_core.Analysis.warmup with
  | Some t0 -> Alcotest.(check (float 1e-9)) "T0" 2.5e-6 t0
  | None -> Alcotest.fail "warmup expected");
  (* report renders *)
  let text = Dcecc_core.Analysis.to_string r in
  Alcotest.(check bool) "report non-empty" true (String.length text > 200)

let test_analysis_limit_cycle_probe () =
  (* the draft parameters' quasi-cycle: slow contraction, no divergence *)
  match Dcecc_core.Analysis.probe_limit_cycle ~max_iters:25 big with
  | Phaseplane.Limit_cycle.Contracting { ratio; _ } ->
      Alcotest.(check bool) "ratio below 1" true (ratio < 1.);
      Alcotest.(check bool) "ratio near 1 (quasi-cycle)" true (ratio > 0.8)
  | Phaseplane.Limit_cycle.Converges_to_origin -> ()
  | v ->
      Alcotest.failf "unexpected verdict: %s"
        (match v with
        | Phaseplane.Limit_cycle.Cycle _ -> "cycle"
        | Phaseplane.Limit_cycle.Diverges -> "diverges"
        | Phaseplane.Limit_cycle.Expanding _ -> "expanding"
        | Phaseplane.Limit_cycle.Inconclusive m -> m
        | _ -> "?")

let test_region_time_scales_positive () =
  List.iter
    (fun p ->
      let mx, mn = Fluid.Stability.first_excursion ~t_max:0.002 p in
      Alcotest.(check bool) "finite excursion" true
        (Float.is_finite mx && Float.is_finite mn))
    [ default; Dcecc_core.Figures.case2_params ]

let prop_criterion_sound =
  (* randomized soundness: Theorem 1 satisfied => no overflow in the
     nonlinear simulation (checked on a reduced-horizon analysis) *)
  QCheck.Test.make ~name:"Theorem 1 soundness (random gains)" ~count:12
    QCheck.(pair (float_range 0.5 8.) (float_range (1. /. 512.) (1. /. 16.)))
    (fun (gi, gd) ->
      let p = Fluid.Params.with_gains ~gi ~gd default in
      let p = Fluid.Params.with_buffer p (1.05 *. Fluid.Criterion.required_buffer p) in
      let v = Fluid.Stability.analyze p in
      v.Fluid.Stability.strongly_stable)

let prop_overshoot_below_bound =
  QCheck.Test.make
    ~name:"semi-analytic max1 never exceeds the Theorem-1 bound" ~count:20
    QCheck.(pair (float_range 0.5 8.) (float_range (1. /. 512.) (1. /. 16.)))
    (fun (gi, gd) ->
      let p = Fluid.Params.with_gains ~gi ~gd default in
      match Fluid.Flowmap.first_overshoot p with
      | Some mx -> mx <= Fluid.Criterion.overshoot_bound p *. (1. +. 1e-9)
      | None -> true)

let prop_undershoot_above_minus_q0 =
  QCheck.Test.make
    ~name:"semi-analytic min1 stays above -q0 (Theorem-1 proof step)"
    ~count:20
    QCheck.(pair (float_range 0.5 8.) (float_range (1. /. 512.) (1. /. 16.)))
    (fun (gi, gd) ->
      let p = Fluid.Params.with_gains ~gi ~gd default in
      match Fluid.Flowmap.first_undershoot p with
      | Some mn -> mn >= -.p.Fluid.Params.q0 *. (1. +. 1e-9)
      | None -> true)

(* ---------------- Delayed feedback ---------------- *)

let test_delayed_zero_tau_matches_undelayed () =
  let r = Fluid.Delayed.simulate ~tau:0. big in
  (* the dedicated DDE integrator at tau = 0 must agree with the standard
     nonlinear integration on the first overshoot *)
  let mx_dde = Numerics.Stats.max r.Fluid.Delayed.x.Numerics.Series.vs in
  let mx_ref, _ = Fluid.Stability.first_excursion big in
  Alcotest.(check bool)
    (Printf.sprintf "overshoot %.4g vs %.4g" mx_dde mx_ref)
    true
    (Float.abs (mx_dde -. mx_ref) < 0.05 *. mx_ref)

let test_delayed_growth_increases_with_tau () =
  let g tau =
    match (Fluid.Delayed.simulate ~tau big).Fluid.Delayed.growth_per_cycle with
    | Some g -> g
    | None -> Alcotest.fail "expected oscillation"
  in
  let g0 = g 0. and g2 = g 2e-6 in
  Alcotest.(check bool) "tau=0 contracts" true (g0 < 1.);
  Alcotest.(check bool) "delay weakens contraction" true (g2 > g0)

let test_delayed_large_tau_unstable () =
  Alcotest.(check bool) "tau = 1e-4 unstable" false
    (Fluid.Delayed.is_stable ~tau:1e-4 big)

let test_delayed_critical_delay_brackets () =
  (* stability is not monotone in tau (delay-induced stabilization pockets
     exist — see experiment A2), so only check that a critical delay is
     found in range and that the clearly-stable / clearly-unstable ends
     behave *)
  match Fluid.Delayed.critical_delay big with
  | Some tau ->
      Alcotest.(check bool) "within scanned range" true (tau > 0. && tau < 1e-3);
      Alcotest.(check bool) "tiny delay stable" true
        (Fluid.Delayed.is_stable ~tau:1e-6 big)
  | None -> Alcotest.fail "expected a critical delay at the draft gains"

let test_delayed_rejects_negative_tau () =
  Alcotest.(check bool) "negative tau" true
    (try
       ignore (Fluid.Delayed.simulate ~tau:(-1.) big);
       false
     with Invalid_argument _ -> true)

(* ---------------- Transient metrics ---------------- *)

let test_transient_measure_shape () =
  let m = Fluid.Transient.measure big in
  Alcotest.(check bool) "overshoot positive" true
    (m.Fluid.Transient.overshoot > 0.);
  Alcotest.(check bool) "undershoot negative" true
    (m.Fluid.Transient.undershoot < 0.);
  Alcotest.(check bool) "oscillates" true (m.Fluid.Transient.oscillations > 5);
  match m.Fluid.Transient.decay_per_cycle with
  | Some d -> Alcotest.(check bool) "contracting" true (d < 1.)
  | None -> Alcotest.fail "expected decay estimate"

let test_transient_invariant_bound_across_w () =
  (* the Remarks: w moves the transient but not the Theorem-1 bound *)
  let reqs =
    List.map
      (fun w ->
        Fluid.Criterion.required_buffer (Fluid.Params.with_sampling ~w big))
      [ 0.5; 2.; 32. ]
  in
  match reqs with
  | a :: rest ->
      List.iter
        (fun b -> Alcotest.(check (float 1.)) "bound unchanged" a b)
        rest
  | [] -> ()

let test_transient_gd_speeds_decay () =
  (* a stronger decrease gain contracts the oscillation faster *)
  let decay gd =
    match
      (Fluid.Transient.measure (Fluid.Params.with_gains ~gd big))
        .Fluid.Transient.decay_per_cycle
    with
    | Some d -> d
    | None -> Alcotest.fail "expected decay"
  in
  Alcotest.(check bool) "Gd x4 decays faster" true
    (decay (1. /. 32.) < decay (1. /. 128.))

(* ---------------- Safe region ---------------- *)

let test_safe_region_classify () =
  (* the canonical warm-up start overflows with the BDP buffer ... *)
  Alcotest.(check bool) "warm-up overflows at BDP" true
    (Fluid.Safe_region.classify default ~q:0. ~r:0. = Fluid.Safe_region.Overflow);
  (* ... and is safe with the Theorem-1 buffer *)
  Alcotest.(check bool) "warm-up safe at Theorem-1 B" true
    (Fluid.Safe_region.classify big ~q:0. ~r:0. = Fluid.Safe_region.Safe);
  (* the equilibrium itself is safe in both *)
  Alcotest.(check bool) "equilibrium safe" true
    (Fluid.Safe_region.classify default ~q:default.Fluid.Params.q0
       ~r:(Fluid.Params.equilibrium_rate default)
     = Fluid.Safe_region.Safe)

let test_safe_region_raster_orders () =
  let ra = Fluid.Safe_region.raster ~nq:8 ~nr:6 default in
  let rb = Fluid.Safe_region.raster ~nq:8 ~nr:6 big in
  Alcotest.(check bool) "bigger buffer, bigger basin" true
    (rb.Fluid.Safe_region.safe_fraction >= ra.Fluid.Safe_region.safe_fraction);
  Alcotest.(check bool) "Theorem-1 basin is everything" true
    (rb.Fluid.Safe_region.safe_fraction > 0.999);
  Alcotest.(check bool) "BDP basin has holes" true
    (ra.Fluid.Safe_region.safe_fraction < 0.95);
  (* render is well-formed *)
  let txt = Fluid.Safe_region.render ra in
  Alcotest.(check bool) "render nonempty" true (String.length txt > 50)

let test_safe_region_rejects_bad_input () =
  Alcotest.(check bool) "q > B rejected" true
    (try
       ignore (Fluid.Safe_region.classify default ~q:1e9 ~r:1e8);
       false
     with Invalid_argument _ -> true)

(* ---------------- Design engine ---------------- *)

let test_design_recommend_feasible () =
  match Fluid.Design.recommend ~n_flows:50 ~capacity:10e9 ~buffer:5e6 () with
  | Some c ->
      Alcotest.(check bool) "criterion holds with headroom" true
        (1.1 *. c.Fluid.Design.required_buffer < 5e6);
      Alcotest.(check bool) "warm-up bounded" true
        (c.Fluid.Design.warmup <= 1e-3);
      (* the recommendation is actually strongly stable *)
      let v = Fluid.Stability.analyze c.Fluid.Design.params in
      Alcotest.(check bool) "strongly stable" true
        v.Fluid.Stability.strongly_stable
  | None -> Alcotest.fail "expected a feasible configuration"

let test_design_infeasible () =
  let constraints =
    { Fluid.Design.max_warmup = 1e-12; headroom = 1.1 }
  in
  Alcotest.(check bool) "impossible warm-up bound" true
    (Fluid.Design.recommend ~constraints ~n_flows:50 ~capacity:10e9
       ~buffer:5e6 ()
     = None)

let test_design_ranking () =
  let cands =
    Fluid.Design.feasible_set ~n_flows:50 ~capacity:10e9 ~buffer:5e6 ()
  in
  Alcotest.(check bool) "nonempty" true (List.length cands > 1);
  match cands with
  | first :: rest ->
      let last = List.nth rest (List.length rest - 1) in
      (match (first.Fluid.Design.settling, last.Fluid.Design.settling) with
      | Some a, Some b -> Alcotest.(check bool) "sorted by settling" true (a <= b)
      | Some _, None -> ()
      | None, Some _ -> Alcotest.fail "unsettled ranked above settled"
      | None, None -> ())
  | [] -> Alcotest.fail "unreachable"

(* ---------------- AIMD fairness (Chiu-Jain) ---------------- *)

let test_aimd_converges_to_fairness () =
  let policy = Fluid.Aimd_fairness.Aimd { increase = 1e8; decrease = 0.2 } in
  Alcotest.(check bool) "converges" true
    (Fluid.Aimd_fairness.converges_to_fairness policy ~capacity:10e9
       { Fluid.Aimd_fairness.r1 = 9e9; r2 = 1e9 })

let test_aiad_does_not_converge () =
  let policy = Fluid.Aimd_fairness.Aiad { increase = 1e8; decrease = 2e9 } in
  Alcotest.(check bool) "does not converge" false
    (Fluid.Aimd_fairness.converges_to_fairness policy ~capacity:10e9
       { Fluid.Aimd_fairness.r1 = 9e9; r2 = 1e9 })

let test_aimd_md_preserves_ratio () =
  (* multiplicative decrease preserves r1/r2; additive increase shrinks
     the relative gap — the Chiu-Jain geometry *)
  let policy = Fluid.Aimd_fairness.Aimd { increase = 1e8; decrease = 0.25 } in
  let congested = { Fluid.Aimd_fairness.r1 = 8e9; r2 = 4e9 } in
  let after = Fluid.Aimd_fairness.step policy ~capacity:10e9 congested in
  Alcotest.(check (float 1e-9)) "ratio preserved" 2.
    (after.Fluid.Aimd_fairness.r1 /. after.Fluid.Aimd_fairness.r2);
  let idle = { Fluid.Aimd_fairness.r1 = 2e9; r2 = 1e9 } in
  let after = Fluid.Aimd_fairness.step policy ~capacity:10e9 idle in
  Alcotest.(check bool) "gap ratio shrinks" true
    (after.Fluid.Aimd_fairness.r1 /. after.Fluid.Aimd_fairness.r2 < 2.)

let test_aimd_fairness_index () =
  Alcotest.(check (float 1e-12)) "equal" 1.
    (Fluid.Aimd_fairness.fairness_index { Fluid.Aimd_fairness.r1 = 5.; r2 = 5. });
  Alcotest.(check (float 1e-12)) "one flow" 0.5
    (Fluid.Aimd_fairness.fairness_index { Fluid.Aimd_fairness.r1 = 1.; r2 = 0. })

let test_aimd_of_params_converges () =
  let policy = Fluid.Aimd_fairness.of_params Fluid.Params.default in
  Alcotest.(check bool) "BCN-derived gains converge" true
    (Fluid.Aimd_fairness.converges_to_fairness ~n:5000 policy ~capacity:10e9
       { Fluid.Aimd_fairness.r1 = 9e9; r2 = 1e9 })

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "stability"
    [
      ( "excursion",
        [
          Alcotest.test_case "shape" `Quick test_first_excursion_shape;
          Alcotest.test_case "time scales" `Quick test_region_time_scales_positive;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "draft params" `Quick test_verdict_draft_params;
          Alcotest.test_case "sized buffer" `Quick test_verdict_sized_buffer;
          Alcotest.test_case "proposition gating" `Quick
            test_propositions_case_gating;
          Alcotest.test_case "cases 3/4 no overshoot" `Quick
            test_cases_3_4_no_overshoot;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "implies stability" `Quick
            test_theorem1_implies_numeric_stability;
          Alcotest.test_case "conservative" `Quick
            test_theorem1_conservative_not_tight;
        ] );
      ( "baseline",
        [ Alcotest.test_case "blindness (V2)" `Quick test_baseline_blindness ] );
      ( "analysis",
        [
          Alcotest.test_case "report" `Quick test_analysis_report;
          Alcotest.test_case "limit-cycle probe" `Quick
            test_analysis_limit_cycle_probe;
        ] );
      ( "delayed",
        [
          Alcotest.test_case "tau = 0 baseline" `Quick
            test_delayed_zero_tau_matches_undelayed;
          Alcotest.test_case "growth vs tau" `Quick
            test_delayed_growth_increases_with_tau;
          Alcotest.test_case "large tau unstable" `Quick
            test_delayed_large_tau_unstable;
          Alcotest.test_case "critical delay" `Slow
            test_delayed_critical_delay_brackets;
          Alcotest.test_case "negative tau" `Quick
            test_delayed_rejects_negative_tau;
        ] );
      ( "safe-region",
        [
          Alcotest.test_case "classify" `Quick test_safe_region_classify;
          Alcotest.test_case "raster ordering" `Slow test_safe_region_raster_orders;
          Alcotest.test_case "input validation" `Quick
            test_safe_region_rejects_bad_input;
        ] );
      ( "design",
        [
          Alcotest.test_case "recommend" `Quick test_design_recommend_feasible;
          Alcotest.test_case "infeasible" `Quick test_design_infeasible;
          Alcotest.test_case "ranking" `Slow test_design_ranking;
        ] );
      ( "aimd-fairness",
        [
          Alcotest.test_case "AIMD converges" `Quick test_aimd_converges_to_fairness;
          Alcotest.test_case "AIAD does not" `Quick test_aiad_does_not_converge;
          Alcotest.test_case "MD preserves ratio" `Quick test_aimd_md_preserves_ratio;
          Alcotest.test_case "fairness index" `Quick test_aimd_fairness_index;
          Alcotest.test_case "BCN-derived gains" `Quick test_aimd_of_params_converges;
        ] );
      ( "transient",
        [
          Alcotest.test_case "measure shape" `Quick test_transient_measure_shape;
          Alcotest.test_case "bound invariant in w" `Quick
            test_transient_invariant_bound_across_w;
          Alcotest.test_case "Gd speeds decay" `Quick test_transient_gd_speeds_decay;
        ] );
      qsuite "props"
        [
          prop_criterion_sound;
          prop_overshoot_below_bound;
          prop_undershoot_above_minus_q0;
        ];
    ]
