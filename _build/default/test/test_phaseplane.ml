(* Tests for the generic phase-plane toolkit, exercised on textbook
   systems with known behaviour (harmonic oscillator, damped oscillator,
   the polar limit-cycle system r' = r(1 - r^2)). *)

open Numerics

let checkf eps = Alcotest.(check (float eps))

(* ---------------- Singular ---------------- *)

let companion ~n ~m = Mat2.make 0. 1. (-.n) (-.m)

let test_classify_taxonomy () =
  let open Phaseplane.Singular in
  Alcotest.(check string) "stable focus" "stable focus"
    (to_string (classify (companion ~n:25. ~m:2.)));
  Alcotest.(check string) "unstable focus" "unstable focus"
    (to_string (classify (companion ~n:25. ~m:(-2.))));
  Alcotest.(check string) "stable node" "stable node"
    (to_string (classify (companion ~n:25. ~m:11.)));
  Alcotest.(check string) "unstable node" "unstable node"
    (to_string (classify (companion ~n:25. ~m:(-11.))));
  Alcotest.(check string) "center" "center"
    (to_string (classify (companion ~n:25. ~m:0.)));
  Alcotest.(check string) "saddle" "saddle"
    (to_string (classify (companion ~n:(-25.) ~m:2.)));
  Alcotest.(check string) "degenerate" "degenerate stable node"
    (to_string (classify (companion ~n:25. ~m:10.)))

let test_is_attracting () =
  let open Phaseplane.Singular in
  Alcotest.(check bool) "focus attracts" true
    (is_attracting (classify (companion ~n:25. ~m:2.)));
  Alcotest.(check bool) "center does not" false
    (is_attracting (classify (companion ~n:25. ~m:0.)))

(* ---------------- System ---------------- *)

let test_system_regions () =
  let sigma (p : Vec2.t) = -.(p.Vec2.x +. p.Vec2.y) in
  let sys =
    Phaseplane.System.Switched
      {
        sigma;
        pos = (fun _ -> Vec2.make 1. 0.);
        neg = (fun _ -> Vec2.make (-1.) 0.);
      }
  in
  Alcotest.(check bool) "pos region" true
    (Phaseplane.System.region sys (Vec2.make (-2.) 0.) = `Pos);
  Alcotest.(check bool) "neg region" true
    (Phaseplane.System.region sys (Vec2.make 2. 0.) = `Neg);
  Alcotest.(check bool) "boundary" true
    (Phaseplane.System.region sys (Vec2.make 1. (-1.)) = `Boundary);
  let v = Phaseplane.System.eval sys (Vec2.make (-2.) 0.) in
  checkf 1e-12 "pos branch used" 1. v.Vec2.x

let test_system_linear () =
  let m = Mat2.make 0. 1. (-4.) 0. in
  let sys = Phaseplane.System.linear m in
  let v = Phaseplane.System.eval sys (Vec2.make 1. 2.) in
  checkf 1e-12 "dx" 2. v.Vec2.x;
  checkf 1e-12 "dy" (-4.) v.Vec2.y

(* ---------------- Trajectory ---------------- *)

let harmonic = Phaseplane.System.linear (Mat2.make 0. 1. (-1.) 0.)

let test_trajectory_harmonic () =
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:(2. *. Float.pi) harmonic
      (Vec2.make 1. 0.)
  in
  let _, p = Phaseplane.Trajectory.final tr in
  checkf 1e-6 "x after period" 1. p.Vec2.x;
  checkf 1e-6 "y after period" 0. p.Vec2.y;
  Alcotest.(check bool) "axis crossings >= 1" true
    (List.length tr.Phaseplane.Trajectory.axis_crossings >= 1)

let test_trajectory_converges () =
  let damped = Phaseplane.System.linear (Mat2.make 0. 1. (-1.) (-1.)) in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:100. ~converge_radius:1e-3 damped
      (Vec2.make 1. 0.)
  in
  Alcotest.(check bool) "converged" true
    (tr.Phaseplane.Trajectory.stop = Phaseplane.Trajectory.Converged);
  let _, p = Phaseplane.Trajectory.final tr in
  Alcotest.(check bool) "inside ball" true (Vec2.norm p <= 1.01e-3)

let test_trajectory_leaves_box () =
  let expanding = Phaseplane.System.Smooth (fun p -> p) in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:100.
      ~box:(Vec2.make (-2.) (-2.), Vec2.make 2. 2.)
      expanding (Vec2.make 1. 1.)
  in
  Alcotest.(check bool) "left box" true
    (tr.Phaseplane.Trajectory.stop = Phaseplane.Trajectory.Left_box)

let test_trajectory_switch_crossings () =
  (* harmonic oscillator with a (dynamically inert) switching line y = 0:
     crossings coincide with the axis crossings *)
  let sigma (p : Vec2.t) = p.Vec2.y in
  let sys =
    Phaseplane.System.Switched
      {
        sigma;
        pos = (fun p -> Vec2.make p.Vec2.y (-.p.Vec2.x));
        neg = (fun p -> Vec2.make p.Vec2.y (-.p.Vec2.x));
      }
  in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:(2. *. Float.pi -. 0.1) sys
      (Vec2.make 1. 0.)
  in
  Alcotest.(check int) "one interior switch crossing" 1
    (List.length tr.Phaseplane.Trajectory.switch_crossings);
  match tr.Phaseplane.Trajectory.switch_crossings with
  | [ { Phaseplane.Trajectory.ct; cp } ] ->
      checkf 1e-6 "at t = pi" Float.pi ct;
      checkf 1e-6 "x = -1" (-1.) cp.Vec2.x
  | _ -> Alcotest.fail "expected exactly one crossing"

let test_trajectory_series () =
  let tr = Phaseplane.Trajectory.integrate ~t_max:1. harmonic (Vec2.make 1. 0.) in
  let xs = Phaseplane.Trajectory.x_series tr in
  checkf 1e-6 "x(1) = cos 1" (cos 1.) (Series.at xs 1.);
  checkf 1e-9 "x max" 1. (Phaseplane.Trajectory.x_max tr)

(* ---------------- Poincare on the polar limit cycle ---------------- *)

(* r' = r(1 - r^2), theta' = 1: a globally attracting limit cycle at r=1.
   Cartesian: x' = x(1-r^2) - y, y' = y(1-r^2) + x. *)
let polar_cycle =
  Phaseplane.System.Smooth
    (fun p ->
      let x = p.Vec2.x and y = p.Vec2.y in
      let r2 = (x *. x) +. (y *. y) in
      Vec2.make ((x *. (1. -. r2)) -. y) ((y *. (1. -. r2)) +. x))

(* With normal (0,-1) the section coordinate runs along +x and a [Down]
   crossing of the guard (-y: + -> -) is the counter-clockwise orbit
   passing the positive x-axis upward — one crossing per revolution. *)
let section_y =
  Phaseplane.Poincare.line_section ~dir:Ode.Down ~normal:(Vec2.make 0. (-1.)) ()

let test_poincare_return_map () =
  match Phaseplane.Poincare.return_map polar_cycle section_y 0.5 with
  | Some r ->
      Alcotest.(check bool) "amplitude grew toward 1" true
        (r.Phaseplane.Poincare.s_next > 0.5
         && r.Phaseplane.Poincare.s_next < 1.01);
      checkf 0.05 "period ~ 2pi" (2. *. Float.pi) r.Phaseplane.Poincare.time
  | None -> Alcotest.fail "no return"

let test_poincare_iterate_converges_to_cycle () =
  let iters = Phaseplane.Poincare.iterate polar_cycle section_y ~n:12 0.3 in
  match List.rev iters with
  | last :: _ -> checkf 1e-4 "converged to r=1" 1. last
  | [] -> Alcotest.fail "no iterates"

let test_poincare_fixed_points () =
  let fps =
    Phaseplane.Poincare.fixed_points polar_cycle section_y ~s_min:0.3 ~s_max:2.
      ~n:10
  in
  Alcotest.(check int) "one fixed point" 1 (List.length fps);
  checkf 1e-6 "at r=1" 1. (List.hd fps)

let test_poincare_derivative_stable () =
  match Phaseplane.Poincare.derivative polar_cycle section_y 1. with
  | Some d -> Alcotest.(check bool) "multiplier < 1" true (Float.abs d < 1.)
  | None -> Alcotest.fail "derivative failed"

let test_line_section_geometry () =
  let sec = Phaseplane.Poincare.line_section ~normal:(Vec2.make 1. 1.) () in
  let p = sec.Phaseplane.Poincare.point_of 2. in
  checkf 1e-12 "on section" 0. (sec.Phaseplane.Poincare.guard p);
  checkf 1e-12 "coordinate roundtrip" 2. (sec.Phaseplane.Poincare.coord_of p)

(* ---------------- Limit_cycle ---------------- *)

let test_limit_cycle_detect_cycle () =
  match Phaseplane.Limit_cycle.detect polar_cycle section_y ~s0:0.4 with
  | Phaseplane.Limit_cycle.Cycle { s_star; period; multiplier; stable } ->
      checkf 1e-4 "cycle at r=1" 1. s_star;
      checkf 0.05 "period 2pi" (2. *. Float.pi) period;
      (match multiplier with
      | Some m -> Alcotest.(check bool) "contracting" true (m < 1.)
      | None -> ());
      (match stable with
      | Some b -> Alcotest.(check bool) "stable" true b
      | None -> ())
  | _ -> Alcotest.fail "expected a cycle"

let test_limit_cycle_detect_convergence () =
  let damped =
    Phaseplane.System.Smooth
      (fun p -> Vec2.make p.Vec2.y (-.p.Vec2.x -. (0.8 *. p.Vec2.y)))
  in
  match Phaseplane.Limit_cycle.detect damped section_y ~s0:1. with
  | Phaseplane.Limit_cycle.Converges_to_origin
  | Phaseplane.Limit_cycle.Contracting _ ->
      ()
  | v ->
      Alcotest.failf "expected convergence, got %s"
        (match v with
        | Phaseplane.Limit_cycle.Cycle _ -> "cycle"
        | Phaseplane.Limit_cycle.Diverges -> "diverges"
        | Phaseplane.Limit_cycle.Expanding _ -> "expanding"
        | Phaseplane.Limit_cycle.Inconclusive m -> m
        | Phaseplane.Limit_cycle.Converges_to_origin
        | Phaseplane.Limit_cycle.Contracting _ ->
            "")

let test_limit_cycle_detect_divergence () =
  let unstable =
    Phaseplane.System.Smooth
      (fun p -> Vec2.make p.Vec2.y (-.p.Vec2.x +. (0.5 *. p.Vec2.y)))
  in
  match
    Phaseplane.Limit_cycle.detect ~diverge_bound:100. unstable section_y ~s0:1.
  with
  | Phaseplane.Limit_cycle.Diverges | Phaseplane.Limit_cycle.Expanding _ -> ()
  | _ -> Alcotest.fail "expected divergence"

let test_amplitude_history_monotone () =
  let hist =
    Phaseplane.Limit_cycle.amplitude_history polar_cycle section_y ~n:8 ~s0:0.3
  in
  Alcotest.(check int) "8 iterates" 8 (List.length hist);
  let sorted = List.sort compare hist in
  Alcotest.(check (list (float 1e-12))) "monotone growth toward cycle" sorted hist

(* ---------------- Properties ---------------- *)

let prop_stable_linear_systems_contract =
  QCheck.Test.make
    ~name:"random stable linear systems contract the state over time"
    ~count:100
    QCheck.(pair (float_range 0.2 5.) (float_range 0.5 30.))
    (fun (m, n) ->
      (* companion form with m, n > 0 is always Hurwitz *)
      let sys = Phaseplane.System.linear (Mat2.make 0. 1. (-.n) (-.m)) in
      let p0 = Vec2.make 1. 1. in
      let tr = Phaseplane.Trajectory.integrate ~t_max:(40. /. m) sys p0 in
      let _, pf = Phaseplane.Trajectory.final tr in
      Vec2.norm pf < Vec2.norm p0)

let prop_classification_matches_eigen_sign =
  QCheck.Test.make
    ~name:"equilibrium classification agrees with eigenvalue real parts"
    ~count:200
    QCheck.(
      quad (float_range (-5.) 5.) (float_range (-5.) 5.) (float_range (-5.) 5.)
        (float_range (-5.) 5.))
    (fun (a11, a12, a21, a22) ->
      let j = Mat2.make a11 a12 a21 a22 in
      let re_parts =
        match Mat2.eigenvalues j with
        | Mat2.Real_pair (l1, l2) -> [ l1; l2 ]
        | Mat2.Complex_pair { re; _ } -> [ re; re ]
      in
      QCheck.assume (List.for_all (fun r -> Float.abs r > 1e-3) re_parts);
      let all_neg = List.for_all (fun r -> r < 0.) re_parts in
      Phaseplane.Singular.is_attracting (Phaseplane.Singular.classify j)
      = all_neg)

let prop_switched_stable_regions_bounded =
  QCheck.Test.make
    ~name:"switched systems with two stable regions stay bounded" ~count:40
    QCheck.(
      quad (float_range 0.5 4.) (float_range 2. 40.) (float_range 0.5 4.)
        (float_range 2. 40.))
    (fun (m1, n1, m2, n2) ->
      let sigma (p : Vec2.t) = -.(p.Vec2.x +. (0.3 *. p.Vec2.y)) in
      let sys =
        Phaseplane.System.switched_linear ~sigma
          ~pos:(Mat2.make 0. 1. (-.n1) (-.m1))
          ~neg:(Mat2.make 0. 1. (-.n2) (-.m2))
      in
      let tr = Phaseplane.Trajectory.integrate ~t_max:20. sys (Vec2.make (-1.) 0.) in
      Array.for_all
        (fun (y : float array) ->
          Float.is_finite y.(0) && Float.abs y.(0) < 100.)
        tr.Phaseplane.Trajectory.sol.Ode.ys)

(* ---------------- Portrait ---------------- *)

let test_portrait_grid () =
  let pts =
    Phaseplane.Portrait.grid ~lo:(Vec2.make 0. 0.) ~hi:(Vec2.make 1. 1.) ~nx:3
      ~ny:4
  in
  Alcotest.(check int) "3x4 lattice" 12 (List.length pts)

let test_portrait_ring () =
  let pts = Phaseplane.Portrait.ring ~center:Vec2.zero ~radius:2. ~n:8 in
  Alcotest.(check int) "8 points" 8 (List.length pts);
  List.iter (fun p -> checkf 1e-12 "radius" 2. (Vec2.norm p)) pts

let test_portrait_field_arrows () =
  let arrows =
    Phaseplane.Portrait.field_arrows harmonic ~lo:(Vec2.make (-1.) (-1.))
      ~hi:(Vec2.make 1. 1.) ~nx:3 ~ny:3
  in
  Alcotest.(check int) "9 arrows" 9 (List.length arrows);
  List.iter
    (fun (p, d) ->
      let n = Vec2.norm d in
      if Vec2.norm (Phaseplane.System.eval harmonic p) > 0. then
        checkf 1e-9 "unit direction" 1. n)
    arrows

let test_portrait_switching_line () =
  let sigma (p : Vec2.t) = p.Vec2.x +. p.Vec2.y in
  let pts =
    Phaseplane.Portrait.switching_line_points ~sigma
      ~lo:(Vec2.make (-1.) (-1.)) ~hi:(Vec2.make 1. 1.) ~n:11
  in
  Alcotest.(check bool) "found points" true (List.length pts > 5);
  List.iter (fun p -> checkf 1e-9 "on line" 0. (sigma p)) pts

let test_portrait_compute () =
  let inits = Phaseplane.Portrait.ring ~center:Vec2.zero ~radius:1. ~n:4 in
  let pt = Phaseplane.Portrait.compute ~t_max:1. harmonic inits in
  Alcotest.(check int) "4 trajectories" 4
    (List.length pt.Phaseplane.Portrait.trajectories)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "phaseplane"
    [
      qsuite "props"
        [
          prop_stable_linear_systems_contract;
          prop_classification_matches_eigen_sign;
          prop_switched_stable_regions_bounded;
        ];
      ( "singular",
        [
          Alcotest.test_case "taxonomy" `Quick test_classify_taxonomy;
          Alcotest.test_case "attracting" `Quick test_is_attracting;
        ] );
      ( "system",
        [
          Alcotest.test_case "regions" `Quick test_system_regions;
          Alcotest.test_case "linear" `Quick test_system_linear;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "harmonic period" `Quick test_trajectory_harmonic;
          Alcotest.test_case "convergence stop" `Quick test_trajectory_converges;
          Alcotest.test_case "box stop" `Quick test_trajectory_leaves_box;
          Alcotest.test_case "switch crossings" `Quick
            test_trajectory_switch_crossings;
          Alcotest.test_case "series" `Quick test_trajectory_series;
        ] );
      ( "poincare",
        [
          Alcotest.test_case "return map" `Quick test_poincare_return_map;
          Alcotest.test_case "iterate to cycle" `Quick
            test_poincare_iterate_converges_to_cycle;
          Alcotest.test_case "fixed points" `Quick test_poincare_fixed_points;
          Alcotest.test_case "derivative" `Quick test_poincare_derivative_stable;
          Alcotest.test_case "section geometry" `Quick test_line_section_geometry;
        ] );
      ( "limit-cycle",
        [
          Alcotest.test_case "detect cycle" `Quick test_limit_cycle_detect_cycle;
          Alcotest.test_case "detect convergence" `Quick
            test_limit_cycle_detect_convergence;
          Alcotest.test_case "detect divergence" `Quick
            test_limit_cycle_detect_divergence;
          Alcotest.test_case "amplitude history" `Quick
            test_amplitude_history_monotone;
        ] );
      ( "portrait",
        [
          Alcotest.test_case "grid" `Quick test_portrait_grid;
          Alcotest.test_case "ring" `Quick test_portrait_ring;
          Alcotest.test_case "field arrows" `Quick test_portrait_field_arrows;
          Alcotest.test_case "switching line" `Quick test_portrait_switching_line;
          Alcotest.test_case "compute" `Quick test_portrait_compute;
        ] );
    ]
