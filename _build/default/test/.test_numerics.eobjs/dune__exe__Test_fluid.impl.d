test/test_fluid.ml: Alcotest Array Dcecc_core Float Fluid List Mat2 Numerics Ode Phaseplane Poly Printf QCheck QCheck_alcotest Series Vec2
