test/test_report.ml: Alcotest Filename Numerics Report Series String
