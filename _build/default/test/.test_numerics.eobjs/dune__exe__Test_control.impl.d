test/test_control.ml: Alcotest Array Control Float List Mat2 Numerics Ode Poly Printf QCheck QCheck_alcotest
