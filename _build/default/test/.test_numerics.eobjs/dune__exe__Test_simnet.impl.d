test/test_simnet.ml: Alcotest Array Float Fluid List Numerics Printf QCheck QCheck_alcotest Series Simnet Stats
