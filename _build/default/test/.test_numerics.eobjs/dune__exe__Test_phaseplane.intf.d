test/test_phaseplane.mli:
