test/test_numerics.ml: Alcotest Array Float Histogram Interp List Mat2 Numerics Ode Poly QCheck QCheck_alcotest Quad Roots Series Stats Vec2
