test/test_integration.ml: Alcotest Dcecc_core Filename Float Fluid List Numerics Ode Phaseplane Printf Series Simnet String Sys Vec2
