test/test_coverage.ml: Alcotest Array Control Dcecc_core Float Fluid Format Histogram List Mat2 Numerics Ode Poly Series Simnet Stats String Vec2
