test/test_fluid.mli:
