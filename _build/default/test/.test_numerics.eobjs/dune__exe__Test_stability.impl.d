test/test_stability.ml: Alcotest Control Dcecc_core Float Fluid List Numerics Phaseplane Printf QCheck QCheck_alcotest String
