test/test_phaseplane.ml: Alcotest Array Float List Mat2 Numerics Ode Phaseplane QCheck QCheck_alcotest Series Vec2
