(* Tests for the reporting layer: tables, CSV, ASCII plots. *)

open Numerics

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ---------------- Table ---------------- *)

let test_table_alignment () =
  let out =
    Report.Table.render ~headers:[ "a"; "long header" ]
      ~rows:[ [ "xxxx"; "1" ]; [ "y"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: sep :: _ ->
      Alcotest.(check int) "separator width matches header"
        (String.length header) (String.length sep)
  | _ -> Alcotest.fail "expected at least two lines");
  Alcotest.(check bool) "contains cells" true
    (contains ~needle:"xxxx" out && contains ~needle:"22" out)

let test_table_pads_short_rows () =
  let out = Report.Table.render ~headers:[ "a"; "b" ] ~rows:[ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_rejects_long_rows () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Report.Table.render ~headers:[ "a" ] ~rows:[ [ "1"; "2" ] ]);
       false
     with Invalid_argument _ -> true)

let test_table_render_floats () =
  let out = Report.Table.render_floats ~headers:[ "v" ] [ [ 0.5 ]; [ 1e9 ] ] in
  Alcotest.(check bool) "formats" true
    (contains ~needle:"0.5" out && contains ~needle:"1e+09" out)

let test_si_formatting () =
  Alcotest.(check string) "mega" "2.5M" (Report.Table.si 2.5e6);
  Alcotest.(check string) "giga" "10G" (Report.Table.si 1e10);
  Alcotest.(check string) "kilo" "12k" (Report.Table.si 12e3);
  Alcotest.(check string) "unit" "3" (Report.Table.si 3.);
  Alcotest.(check string) "micro" "5u" (Report.Table.si 5e-6);
  Alcotest.(check string) "negative" "-2.5M" (Report.Table.si (-2.5e6));
  Alcotest.(check string) "zero" "0" (Report.Table.si 0.)

(* ---------------- Csv ---------------- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Report.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Report.Csv.escape "a\nb")

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let read_all path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_csv_roundtrip () =
  let path = tmp "dcecc_test.csv" in
  Report.Csv.write ~path ~header:[ "x"; "y" ]
    ~rows:[ [ "1"; "a,b" ]; [ "2"; "plain" ] ];
  let content = read_all path in
  Alcotest.(check string) "content" "x,y\n1,\"a,b\"\n2,plain\n" content

let test_csv_write_series () =
  let path = tmp "dcecc_series.csv" in
  let s = Series.make [| 0.; 1. |] [| 10.; 20. |] in
  Report.Csv.write_series ~path ~name:"v" s;
  let content = read_all path in
  Alcotest.(check bool) "header" true (contains ~needle:"t,v" content);
  Alcotest.(check bool) "row" true (contains ~needle:"1,20" content)

let test_csv_columns_ragged () =
  Alcotest.(check bool) "raises on ragged" true
    (try
       Report.Csv.write_columns ~path:(tmp "x.csv") ~header:[ "a"; "b" ]
         ~cols:[ [| 1. |]; [| 1.; 2. |] ];
       false
     with Invalid_argument _ -> true)

(* ---------------- Ascii_plot ---------------- *)

let test_plot_renders_points () =
  let out =
    Report.Ascii_plot.render ~width:20 ~height:8
      [ Report.Ascii_plot.curve "c" [ (0., 0.); (1., 1.) ] ]
  in
  Alcotest.(check bool) "has glyph" true (contains ~needle:"*" out);
  Alcotest.(check bool) "has legend" true (contains ~needle:"c" out)

let test_plot_axis_labels () =
  let out =
    Report.Ascii_plot.render ~width:20 ~height:8 ~x_range:(0., 10.)
      ~y_range:(-5., 5.)
      [ Report.Ascii_plot.curve "c" [ (5., 0.) ] ]
  in
  Alcotest.(check bool) "y max label" true (contains ~needle:"5" out);
  Alcotest.(check bool) "x max label" true (contains ~needle:"10" out)

let test_plot_multiple_glyphs () =
  let out =
    Report.Ascii_plot.render ~width:24 ~height:8
      [
        Report.Ascii_plot.curve "a" [ (0., 0.) ];
        Report.Ascii_plot.curve "b" [ (1., 1.) ];
      ]
  in
  Alcotest.(check bool) "distinct glyphs" true
    (contains ~needle:"*" out && contains ~needle:"+" out)

let test_plot_degenerate_range () =
  (* constant series must not divide by zero *)
  let out =
    Report.Ascii_plot.render ~width:16 ~height:6
      [ Report.Ascii_plot.curve "flat" [ (0., 1.); (1., 1.) ] ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_plot_too_small_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Report.Ascii_plot.render ~width:2 ~height:1 []);
       false
     with Invalid_argument _ -> true)

let test_sparkline () =
  let s = Series.of_fn (fun t -> t) 0. 1. 30 in
  let sp = Report.Ascii_plot.sparkline ~width:10 s in
  Alcotest.(check bool) "nonempty" true (String.length sp > 0);
  (* a ramp should start low and end high *)
  Alcotest.(check bool) "ends with peak char" true
    (contains ~needle:"#" sp)

let test_sparkline_empty () =
  Alcotest.(check string) "empty series" ""
    (Report.Ascii_plot.sparkline (Series.make [||] [||]))

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "rejects long rows" `Quick test_table_rejects_long_rows;
          Alcotest.test_case "render_floats" `Quick test_table_render_floats;
          Alcotest.test_case "si" `Quick test_si_formatting;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "write_series" `Quick test_csv_write_series;
          Alcotest.test_case "ragged columns" `Quick test_csv_columns_ragged;
        ] );
      ( "ascii-plot",
        [
          Alcotest.test_case "renders points" `Quick test_plot_renders_points;
          Alcotest.test_case "axis labels" `Quick test_plot_axis_labels;
          Alcotest.test_case "multiple glyphs" `Quick test_plot_multiple_glyphs;
          Alcotest.test_case "degenerate range" `Quick test_plot_degenerate_range;
          Alcotest.test_case "too small" `Quick test_plot_too_small_rejected;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "sparkline empty" `Quick test_sparkline_empty;
        ] );
    ]
