(* Breadth coverage: exercises the API corners the focused suites skip —
   accessors, printers, option handling, small utilities. *)

open Numerics

let checkf eps = Alcotest.(check (float eps))

(* ---------------- Vec2 / Mat2 extras ---------------- *)

let test_vec2_array_roundtrip () =
  let v = Vec2.make 3. (-4.) in
  let v' = Vec2.of_array (Vec2.to_array v) in
  Alcotest.(check bool) "roundtrip" true (Vec2.equal v v');
  checkf 1e-12 "angle" (atan2 (-4.) 3.) (Vec2.angle v);
  Alcotest.(check bool) "of_array short" true
    (try
       ignore (Vec2.of_array [| 1. |]);
       false
     with Invalid_argument _ -> true)

let test_mat2_algebra () =
  let a = Mat2.make 1. 2. 3. 4. and b = Mat2.make 5. 6. 7. 8. in
  Alcotest.(check bool) "add" true
    (Mat2.equal (Mat2.add a b) (Mat2.make 6. 8. 10. 12.));
  Alcotest.(check bool) "sub" true
    (Mat2.equal (Mat2.sub b a) (Mat2.make 4. 4. 4. 4.));
  Alcotest.(check bool) "scale" true
    (Mat2.equal (Mat2.scale 2. a) (Mat2.make 2. 4. 6. 8.));
  Alcotest.(check bool) "transpose" true
    (Mat2.equal (Mat2.transpose a) (Mat2.make 1. 3. 2. 4.));
  let r1 = Mat2.row1 a and r2 = Mat2.row2 a in
  Alcotest.(check bool) "rows" true
    (Mat2.equal (Mat2.of_rows r1 r2) a);
  Alcotest.(check bool) "singular inv" true
    (try
       ignore (Mat2.inv (Mat2.make 1. 2. 2. 4.));
       false
     with Failure _ -> true)

(* ---------------- Poly extras ---------------- *)

let test_poly_derivative_and_sub () =
  (* d/dx (1 + 2x + 3x^2) = 2 + 6x *)
  let d = Poly.derivative [| 1.; 2.; 3. |] in
  checkf 1e-12 "d c0" 2. d.(0);
  checkf 1e-12 "d c1" 6. d.(1);
  let z = Poly.sub [| 1.; 2. |] [| 1.; 2. |] in
  Alcotest.(check int) "zero poly degree" 0 (Poly.degree z);
  checkf 1e-12 "zero poly" 0. (Poly.eval z 3.)

let test_poly_normalization () =
  let p = Poly.make [| 1.; 2.; 0.; 0. |] in
  Alcotest.(check int) "trailing zeros dropped" 1 (Poly.degree p);
  let pp = Format.asprintf "%a" Poly.pp p in
  Alcotest.(check bool) "printer" true (String.length pp > 0)

(* ---------------- Ode fixed-step events ---------------- *)

let test_ode_fixed_step_events () =
  let harmonic _t y = [| y.(1); -.y.(0) |] in
  let ev =
    {
      Ode.ev_name = "zero";
      guard = (fun _t y -> y.(0));
      dir = Ode.Down;
      terminal = true;
    }
  in
  let sol =
    Ode.solve_fixed ~method_:Ode.Rk4 ~events:[ ev ] ~h:1e-3 ~t_end:10.
      harmonic ~t0:0. ~y0:[| 1.; 0. |]
  in
  match sol.Ode.terminated with
  | Some oc -> checkf 1e-6 "fixed-step event at pi/2" (Float.pi /. 2.) oc.Ode.oc_t
  | None -> Alcotest.fail "event missed"

let test_ode_invalid_args () =
  let f _t y = [| -.y.(0) |] in
  Alcotest.(check bool) "h <= 0" true
    (try
       ignore (Ode.solve_fixed ~h:0. ~t_end:1. f ~t0:0. ~y0:[| 1. |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "t_end <= t0" true
    (try
       ignore (Ode.solve_adaptive ~t_end:0. f ~t0:1. ~y0:[| 1. |]);
       false
     with Invalid_argument _ -> true)

(* ---------------- Series extras ---------------- *)

let test_series_slice_map2 () =
  let s = Series.make [| 0.; 1.; 2.; 3. |] [| 0.; 10.; 20.; 30. |] in
  let sl = Series.slice s 1. 2. in
  Alcotest.(check int) "slice length" 2 (Series.length sl);
  let doubled = Series.map2 ( +. ) s s in
  checkf 1e-12 "map2" 60. (Series.at doubled 3.);
  let lst = Series.to_list s in
  Alcotest.(check int) "to_list" 4 (List.length lst);
  let txt = Format.asprintf "%a" Series.pp s in
  Alcotest.(check bool) "pp" true (String.length txt > 0)

let test_series_argmax_min () =
  let s = Series.make [| 0.; 1.; 2. |] [| 5.; -1.; 3. |] in
  let t, v = Series.argmax s in
  checkf 1e-12 "argmax t" 0. t;
  checkf 1e-12 "argmax v" 5. v;
  let t, v = Series.argmin s in
  checkf 1e-12 "argmin t" 1. t;
  checkf 1e-12 "argmin v" (-1.) v

(* ---------------- Stats extras ---------------- *)

let test_stats_ci95 () =
  let xs = Array.make 100 5. in
  let m, half = Stats.mean_ci95 xs in
  checkf 1e-12 "mean" 5. m;
  checkf 1e-12 "zero width for constant" 0. half

(* ---------------- Histogram extras ---------------- *)

let test_histogram_to_series_and_reset () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add h 1.;
  Histogram.add h 3.;
  let s = Histogram.to_series h in
  Alcotest.(check int) "5 bins" 5 (Series.length s);
  checkf 1e-12 "midpoint" 1. s.Series.ts.(0);
  Histogram.reset h;
  checkf 1e-12 "reset" 0. (Histogram.count h)

(* ---------------- Control extras ---------------- *)

let test_lti2_times () =
  let s = Control.Lti2.make ~m:2. ~n:25. in
  (match Control.Lti2.peak_time s with
  | Some tp -> checkf 1e-9 "peak time" (Float.pi /. (5. *. sqrt 0.96)) tp
  | None -> Alcotest.fail "underdamped has peak time");
  checkf 1e-9 "settling" (4. /. 1.) (Control.Lti2.settling_time_2pct s);
  Alcotest.(check bool) "overdamped no overshoot" true
    (Control.Lti2.step_overshoot (Control.Lti2.make ~m:11. ~n:25.) = None)

let test_tf_zeros_and_scale () =
  let h = Control.Tf.make [| -2.; 1. |] [| 3.; 1. |] in
  (match Control.Tf.zeros h with
  | [ Poly.Real z ] -> checkf 1e-9 "zero at 2" 2. z
  | _ -> Alcotest.fail "expected one zero");
  let g = Control.Tf.scale 3. (Control.Tf.gain 2.) in
  checkf 1e-12 "scaled gain" 6. (Control.Tf.magnitude g 1.)

let test_nyquist_locus_shape () =
  let l = Control.Tf.make [| 1. |] [| 1.; 1. |] in
  let c = Control.Nyquist.locus ~n:100 l in
  Alcotest.(check int) "n points" 100 (Array.length c.Control.Nyquist.ws);
  (* |L(jw)| <= 1 everywhere for 1/(s+1) *)
  Array.iteri
    (fun i _ ->
      let m =
        sqrt
          ((c.Control.Nyquist.res.(i) ** 2.) +. (c.Control.Nyquist.ims.(i) ** 2.))
      in
      Alcotest.(check bool) "bounded" true (m <= 1.0001))
    c.Control.Nyquist.ws

(* ---------------- Fluid extras ---------------- *)

let test_bdp_and_buffer_for () =
  let p = Fluid.Params.default in
  checkf 1. "bdp" 5e6 (Fluid.Params.bdp_buffer p ~rtt:5e-4);
  let b = Fluid.Criterion.buffer_for ~headroom:1.2 p in
  checkf 1. "buffer_for" (1.2 *. Fluid.Criterion.required_buffer p) b;
  Alcotest.(check bool) "headroom < 1 rejected" true
    (try
       ignore (Fluid.Criterion.buffer_for ~headroom:0.5 p);
       false
     with Invalid_argument _ -> true)

let test_cold_start_point () =
  let p = Fluid.Params.default in
  let v = Fluid.Model.cold_start_point p in
  checkf 1e-6 "x = -q0" (-.p.Fluid.Params.q0) v.Vec2.x;
  checkf 1e-6 "y = -C (mu = 0)" (-.p.Fluid.Params.capacity) v.Vec2.y

let test_spiral_period_and_contraction_relation () =
  let c = Fluid.Spiral.coeffs ~m:2. ~n:25. in
  checkf 1e-12 "period" (2. *. Float.pi /. c.Fluid.Spiral.beta)
    (Fluid.Spiral.period c);
  checkf 1e-12 "contraction"
    (exp (2. *. Float.pi *. c.Fluid.Spiral.alpha /. c.Fluid.Spiral.beta))
    (Fluid.Spiral.contraction_per_turn c)

let test_transient_pp () =
  let m =
    Fluid.Transient.measure ~horizon:1e-3
      (Fluid.Params.with_buffer Fluid.Params.default 30e6)
  in
  let txt = Format.asprintf "%a" Fluid.Transient.pp_metrics m in
  Alcotest.(check bool) "pp renders" true (String.length txt > 20)

(* ---------------- Simnet extras ---------------- *)

let test_switch_accessors () =
  let p = Fluid.Params.default in
  let cfg = Simnet.Switch.default_config p ~cpid:9 in
  let sw = Simnet.Switch.create cfg ~control_out:(fun _ _ -> ()) in
  Alcotest.(check int) "config cpid" 9 (Simnet.Switch.config sw).Simnet.Switch.cpid;
  checkf 1e-12 "empty queue" 0. (Simnet.Switch.queue_bits sw);
  Alcotest.(check bool) "not paused" false (Simnet.Switch.upstream_paused sw);
  checkf 1e-9 "fluid sampling period"
    (12000. /. (p.Fluid.Params.pm *. p.Fluid.Params.capacity))
    (Simnet.Switch.fluid_sampling_period p)

let test_source_accessors () =
  let src =
    Simnet.Source.create ~id:7 ~initial_rate:1e6 ~gi:1. ~gd:0.1 ~ru:1e5
      ~send:(fun _ _ -> ())
      ()
  in
  Alcotest.(check int) "id" 7 (Simnet.Source.id src);
  Alcotest.(check int) "no frames yet" 0 (Simnet.Source.frames_sent src);
  checkf 1e-12 "no bits yet" 0. (Simnet.Source.bits_sent src);
  Alcotest.(check bool) "not paused" false (Simnet.Source.is_paused src);
  Alcotest.(check bool) "rejects bad rate" true
    (try
       ignore
         (Simnet.Source.create ~id:0 ~initial_rate:0. ~gi:1. ~gd:1. ~ru:1.
            ~send:(fun _ _ -> ())
            ());
       false
     with Invalid_argument _ -> true)

let test_packet_pp () =
  let pp p = Format.asprintf "%a" Simnet.Packet.pp p in
  Alcotest.(check bool) "data" true
    (String.length (pp (Simnet.Packet.make_data ~seq:1 ~now:0. ~flow:2 ~rrt:(Some 3))) > 0);
  Alcotest.(check bool) "bcn" true
    (String.length (pp (Simnet.Packet.make_bcn ~seq:1 ~now:0. ~flow:2 ~fb:(-1.) ~cpid:3)) > 0);
  Alcotest.(check bool) "pause" true
    (String.length (pp (Simnet.Packet.make_pause ~seq:1 ~now:0. ~on:false)) > 0)

let test_workload_mean_rates () =
  checkf 1e-9 "cbr" 5e6 (Simnet.Workload.mean_offered_rate (Simnet.Workload.cbr ~id:0 ~rate:5e6));
  let inc =
    Simnet.Workload.incast ~ids:[ 0; 1 ] ~burst_frames:10 ~period:0.1 ()
  in
  checkf 1e-6 "incast" (2. *. 10. *. 12000. /. 0.1)
    (Simnet.Workload.mean_offered_rate inc)

let test_qcn_quantize_validation () =
  Alcotest.(check bool) "bits < 1" true
    (try
       ignore (Simnet.Qcn.quantize ~bits:0 ~fb_max:1. (-0.5));
       false
     with Invalid_argument _ -> true)

(* ---------------- Analysis / Figures extras ---------------- *)

let test_analysis_to_string_contains_sections () =
  let r = Dcecc_core.Analysis.run (Fluid.Params.with_buffer Fluid.Params.default 16e6) in
  let text = Dcecc_core.Analysis.to_string r in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has theorem section" true (contains "Theorem 1");
  Alcotest.(check bool) "has baseline section" true (contains "linear baseline");
  Alcotest.(check bool) "has strong stability" true (contains "strong stability")

let test_figures_all_ids_unique () =
  (* just the id list (cheap figure evaluation is covered elsewhere) *)
  let ids =
    [
      "fig3_taxonomy"; "fig4_spiral"; "fig5_node"; "fig6_case1";
      "fig7_limit_cycle"; "fig8_case2"; "fig9_case3"; "fig10_case4";
      "t1_criterion"; "v1_fluid_vs_packet"; "v2_linear_vs_strong";
      "a1_transient_sampling"; "a2_delay_margin"; "a3_solver_ablation";
      "p1_paradigms"; "p2_aimd_fairness"; "w1_cross_traffic";
      "b1_safe_region"; "m1_multihop";
    ]
  in
  Alcotest.(check int) "19 experiments" 19
    (List.length (List.sort_uniq compare ids))

let () =
  Alcotest.run "coverage"
    [
      ( "numerics-extras",
        [
          Alcotest.test_case "vec2 arrays" `Quick test_vec2_array_roundtrip;
          Alcotest.test_case "mat2 algebra" `Quick test_mat2_algebra;
          Alcotest.test_case "poly derivative/sub" `Quick
            test_poly_derivative_and_sub;
          Alcotest.test_case "poly normalization" `Quick test_poly_normalization;
          Alcotest.test_case "fixed-step events" `Quick test_ode_fixed_step_events;
          Alcotest.test_case "ode validation" `Quick test_ode_invalid_args;
          Alcotest.test_case "series slice/map2" `Quick test_series_slice_map2;
          Alcotest.test_case "series argmax/min" `Quick test_series_argmax_min;
          Alcotest.test_case "stats ci95" `Quick test_stats_ci95;
          Alcotest.test_case "histogram series/reset" `Quick
            test_histogram_to_series_and_reset;
        ] );
      ( "control-extras",
        [
          Alcotest.test_case "lti2 times" `Quick test_lti2_times;
          Alcotest.test_case "tf zeros/scale" `Quick test_tf_zeros_and_scale;
          Alcotest.test_case "nyquist locus" `Quick test_nyquist_locus_shape;
        ] );
      ( "fluid-extras",
        [
          Alcotest.test_case "bdp/buffer_for" `Quick test_bdp_and_buffer_for;
          Alcotest.test_case "cold start" `Quick test_cold_start_point;
          Alcotest.test_case "spiral relations" `Quick
            test_spiral_period_and_contraction_relation;
          Alcotest.test_case "transient pp" `Quick test_transient_pp;
        ] );
      ( "simnet-extras",
        [
          Alcotest.test_case "switch accessors" `Quick test_switch_accessors;
          Alcotest.test_case "source accessors" `Quick test_source_accessors;
          Alcotest.test_case "packet pp" `Quick test_packet_pp;
          Alcotest.test_case "workload rates" `Quick test_workload_mean_rates;
          Alcotest.test_case "qcn validation" `Quick test_qcn_quantize_validation;
        ] );
      ( "core-extras",
        [
          Alcotest.test_case "analysis text" `Quick
            test_analysis_to_string_contains_sections;
          Alcotest.test_case "experiment ids" `Quick test_figures_all_ids_unique;
        ] );
    ]
