(* Congestion rollback: why PAUSE alone is not congestion management
   (paper §I): "the congestion can roll back from switch to switch,
   affecting flows that do not contribute to the congestion, but happen
   to share a link with flows that do."

   A victim flow shares only the ingress link with ten hot flows whose
   path congests a downstream core port. With PAUSE alone, the core
   pauses the edge, the edge queue fills, the edge pauses the shared
   ingress — and the victim stalls although its own path is idle. With
   BCN, the hot sources are rate-limited at their reaction points and
   the victim never notices.

   Run with:  dune exec examples/pause_rollback.exe *)

open Numerics

let run ~label ~enable_bcn ~enable_pause =
  let p =
    Fluid.Params.make ~n_flows:10 ~capacity:10e9 ~q0:2.5e6 ~buffer:5e6 ~gi:4.
      ~gd:(1. /. 128.) ~ru:8e6 ()
  in
  let cfg =
    {
      (Simnet.Topology.default_config ~t_end:0.01 ~n_hot:10
         ~victim_rate:500e6 p)
      with
      Simnet.Topology.enable_bcn;
      enable_pause;
      (* hot sources offered 1.5x the bottleneck *)
      initial_hot_rate = 1.5e9;
    }
  in
  let r = Simnet.Topology.victim_scenario cfg in
  [
    label;
    Printf.sprintf "%.1f%%"
      (100. *. r.Simnet.Topology.victim_goodput
       /. r.Simnet.Topology.victim_offered);
    Printf.sprintf "%.1f%%" (100. *. r.Simnet.Topology.victim_paused_fraction);
    string_of_int r.Simnet.Topology.core_drops;
    string_of_int r.Simnet.Topology.core_pause_on;
    string_of_int r.Simnet.Topology.edge_pause_on;
    Report.Table.si (snd (Series.argmax r.Simnet.Topology.core_queue));
  ]

let () =
  Format.printf
    "victim flow (500 Mbit/s, idle path) sharing an ingress link with 10 hot \
     flows (15 Gbit/s offered into a 10G core port)@.@.";
  let rows =
    [
      run ~label:"PAUSE only" ~enable_bcn:false ~enable_pause:true;
      run ~label:"BCN + PAUSE" ~enable_bcn:true ~enable_pause:true;
      run ~label:"BCN only" ~enable_bcn:true ~enable_pause:false;
      run ~label:"no control" ~enable_bcn:false ~enable_pause:false;
    ]
  in
  Report.Table.print
    ~headers:
      [
        "configuration";
        "victim goodput";
        "victim paused";
        "core drops";
        "core PAUSEs";
        "edge PAUSEs";
        "core max q";
      ]
    ~rows;
  Format.printf
    "@.Under PAUSE-only the victim is collateral damage of the shared@.\
     ingress link; BCN pushes the congestion to the edge rate limiters@.\
     and the victim keeps its goodput.@."
