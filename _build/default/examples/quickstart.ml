(* Quickstart: is my BCN deployment strongly stable, and if not, what
   buffer does it need?

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The draft-recommended gains on a 10 Gbit/s link with 50 flows and a
     bandwidth-delay-product buffer — the paper's worked example. *)
  let p = Fluid.Params.default in
  Format.printf "Checking the draft parameters:@.%a@.@." Fluid.Params.pp p;

  (* One call produces the full phase-plane report. *)
  let report = Dcecc_core.Analysis.run p in
  Format.printf "%a@.@." Dcecc_core.Analysis.pp report;

  (* The verdict is negative: the queue overshoots the 5 Mbit buffer.
     Theorem 1 tells us the buffer we actually need. *)
  let needed = Fluid.Criterion.required_buffer p in
  Format.printf "Theorem 1 requires B > %s bit; resizing and re-checking...@.@."
    (Report.Table.si needed);

  let fixed = Fluid.Params.with_buffer p (1.1 *. needed) in
  let report' = Dcecc_core.Analysis.run fixed in
  Format.printf "strongly stable after resizing: %b@."
    report'.Dcecc_core.Analysis.stability.Fluid.Stability.strongly_stable;

  (* Or let the design engine pick gains + reference for the BDP buffer. *)
  (match Fluid.Design.recommend ~n_flows:50 ~capacity:10e9 ~buffer:5e6 () with
  | Some c ->
      Format.printf
        "design engine: Gi = %g, Gd = %g, q0 = %s bit -> required %s bit, \
         settling %s@."
        c.Fluid.Design.params.Fluid.Params.gi
        c.Fluid.Design.params.Fluid.Params.gd
        (Report.Table.si c.Fluid.Design.params.Fluid.Params.q0)
        (Report.Table.si c.Fluid.Design.required_buffer)
        (match c.Fluid.Design.settling with
        | Some t -> Printf.sprintf "%.2g s" t
        | None -> "n/a")
  | None -> Format.printf "design engine: no feasible configuration@.");

  (* Alternatively, keep the BDP buffer and retune the gains. *)
  let gi_ok = Fluid.Criterion.gi_max p in
  let retuned = Fluid.Params.with_gains ~gi:(0.9 *. gi_ok) p in
  let report'' = Dcecc_core.Analysis.run retuned in
  Format.printf
    "or keep B = %s bit with Gi <= %.3f: strongly stable = %b (max q = %s bit)@."
    (Report.Table.si p.Fluid.Params.buffer)
    gi_ok
    report''.Dcecc_core.Analysis.stability.Fluid.Stability.strongly_stable
    (Report.Table.si
       (report''.Dcecc_core.Analysis.stability.Fluid.Stability.numeric_max
        +. p.Fluid.Params.q0))
