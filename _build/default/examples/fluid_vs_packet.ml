(* Does the fluid-flow approximation (paper eqns (4)/(7)) describe the
   packet-level system? This example runs both on the same Case-1
   parameter set and overlays the queue traces, then shows what happens
   at the draft 10G parameters, whose dynamics are faster than the
   sampling — the regime where the fluid model is only qualitative.

   Run with:  dune exec examples/fluid_vs_packet.exe *)

open Numerics

let () =
  (* validated regime: sampling much faster than the oscillation *)
  let p = Dcecc_core.Compare.validation_params in
  Format.printf "validation parameter set:@.%a@.@." Fluid.Params.pp p;
  let r = Dcecc_core.Compare.fluid_vs_packet p in
  Format.printf
    "queue RMSE = %s bit (%.1f%% of q0), correlation = %.3f@.\
     tail means: packet %s, fluid %s (q0 = %s); drops = %d; utilization %.3f@.@."
    (Report.Table.si r.Dcecc_core.Compare.rmse)
    (100. *. r.Dcecc_core.Compare.rmse_rel_q0)
    r.Dcecc_core.Compare.corr
    (Report.Table.si r.Dcecc_core.Compare.packet_mean_tail)
    (Report.Table.si r.Dcecc_core.Compare.fluid_mean_tail)
    (Report.Table.si p.Fluid.Params.q0)
    r.Dcecc_core.Compare.packet_drops r.Dcecc_core.Compare.utilization;
  print_string
    (Report.Ascii_plot.render ~width:70 ~height:16
       ~title:"queue occupancy: packet simulator (p) vs fluid model (f)"
       [
         Report.Ascii_plot.of_series ~glyph:'p' "packet"
           (Series.resample r.Dcecc_core.Compare.packet_queue 300);
         Report.Ascii_plot.of_series ~glyph:'f' "fluid"
           (Series.resample r.Dcecc_core.Compare.fluid_queue 300);
       ]);

  (* the draft 10G parameters: per-flow BCN messages arrive more slowly
     than the system oscillates, so the packet queue swings much harder
     than the fluid prediction — qualitative agreement only *)
  Format.printf
    "@.draft 10G parameters (sampling slower than the dynamics):@.";
  let p10 = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:0.02 p10) with
      Simnet.Runner.mode = Simnet.Source.Literal;
      initial_rate = 0.5 *. Fluid.Params.equilibrium_rate p10;
    }
  in
  let sim = Simnet.Runner.run cfg in
  let fl =
    Fluid.Model.simulate_physical ~h:1e-6
      ~r_init:(0.5 *. Fluid.Params.equilibrium_rate p10)
      ~t_end:0.02 p10
  in
  let tail s = Series.tail_from s 0.01 in
  Format.printf
    "packet: tail mean %s, std %s | fluid: tail mean %s, std %s@."
    (Report.Table.si (Stats.mean (tail sim.Simnet.Runner.queue).Series.vs))
    (Report.Table.si (Stats.stddev (tail sim.Simnet.Runner.queue).Series.vs))
    (Report.Table.si (Stats.mean (tail fl.Fluid.Model.q).Series.vs))
    (Report.Table.si (Stats.stddev (tail fl.Fluid.Model.q).Series.vs));
  print_string
    (Report.Ascii_plot.render ~width:70 ~height:14
       [
         Report.Ascii_plot.of_series ~glyph:'p' "packet (literal BCN)"
           (Series.resample sim.Simnet.Runner.queue 300);
         Report.Ascii_plot.of_series ~glyph:'f' "fluid"
           (Series.resample fl.Fluid.Model.q 300);
       ])
