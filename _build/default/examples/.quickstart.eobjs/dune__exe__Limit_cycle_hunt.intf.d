examples/limit_cycle_hunt.mli:
