examples/quickstart.ml: Dcecc_core Fluid Format Printf Report
