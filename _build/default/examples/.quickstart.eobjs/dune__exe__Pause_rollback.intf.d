examples/pause_rollback.mli:
