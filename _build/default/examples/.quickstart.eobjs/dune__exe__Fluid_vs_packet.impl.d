examples/fluid_vs_packet.ml: Dcecc_core Fluid Format Numerics Report Series Simnet Stats
