examples/pause_rollback.ml: Fluid Format Numerics Printf Report Series Simnet
