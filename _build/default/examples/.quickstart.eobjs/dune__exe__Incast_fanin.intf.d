examples/incast_fanin.mli:
