examples/fluid_vs_packet.mli:
