examples/quickstart.mli:
