examples/limit_cycle_hunt.ml: Dcecc_core Fluid Format List Numerics Ode Phaseplane Printf Report Vec2
