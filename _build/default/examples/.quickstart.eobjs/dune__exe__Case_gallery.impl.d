examples/case_gallery.ml: Array Float Fluid Format Numerics Ode Phaseplane Poly Printf Report Vec2
