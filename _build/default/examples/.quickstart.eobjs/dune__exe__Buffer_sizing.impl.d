examples/buffer_sizing.ml: Control Fluid Format List Printf Report
