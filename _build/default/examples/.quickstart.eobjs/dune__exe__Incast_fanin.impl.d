examples/incast_fanin.ml: Fluid Format Numerics Printf Report Series Simnet
