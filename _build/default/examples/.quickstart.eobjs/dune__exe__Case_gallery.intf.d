examples/case_gallery.mli:
