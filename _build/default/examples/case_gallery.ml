(* A gallery of the paper's five analysis cases (SIV.C): for each case,
   the parameter set, subsystem spectra, the overshoot/undershoot
   quantities (paper formulas where defined), and the strong-stability
   verdict.

   Run with:  dune exec examples/case_gallery.exe *)

open Numerics

let describe_case name p =
  Format.printf "=== %s ===@." name;
  Format.printf "  w = %g, pm = %g, Gi = %g, Gd = %g -> %a@." p.Fluid.Params.w
    p.Fluid.Params.pm p.Fluid.Params.gi p.Fluid.Params.gd Fluid.Cases.pp_case
    (Fluid.Cases.classify p);
  Format.printf "  increase: %s@."
    (Phaseplane.Singular.eigen_summary
       (Fluid.Linearized.jacobian p Fluid.Linearized.Increase));
  Format.printf "  decrease: %s@."
    (Phaseplane.Singular.eigen_summary
       (Fluid.Linearized.jacobian p Fluid.Linearized.Decrease));
  let v = Fluid.Stability.analyze p in
  let fmt_opt = function
    | Some x -> Report.Table.si x
    | None -> "none"
  in
  Format.printf "  overshoot: linearized %s / nonlinear %s; undershoot: %s / %s@."
    (fmt_opt v.Fluid.Stability.analytic_max)
    (Report.Table.si v.Fluid.Stability.numeric_max)
    (fmt_opt v.Fluid.Stability.analytic_min)
    (Report.Table.si v.Fluid.Stability.numeric_min);
  (* the paper's printed expressions, where the case defines them *)
  (match Fluid.Cases.classify p with
  | Fluid.Cases.Case1 ->
      let f = Fluid.Paper_formulas.case1 p in
      Format.printf "  paper eqn (36) max1 = %s, eqn (37) min1 = %s@."
        (Report.Table.si f.Fluid.Paper_formulas.max1)
        (Report.Table.si f.Fluid.Paper_formulas.min1)
  | Fluid.Cases.Case2 ->
      Format.printf "  paper eqn (38) max2 = %s@."
        (Report.Table.si (Fluid.Paper_formulas.max2 p))
  | Fluid.Cases.Case3 | Fluid.Cases.Case4 | Fluid.Cases.Case5 ->
      Format.printf "  no overshoot expression needed (Proposition 4)@.");
  Format.printf "  strongly stable: %b (Theorem 1 satisfied: %b)@.@."
    v.Fluid.Stability.strongly_stable
    (Fluid.Criterion.satisfied p)

let () =
  let base =
    Fluid.Params.with_buffer Fluid.Params.default
      (2. *. Fluid.Criterion.required_buffer Fluid.Params.default)
  in
  describe_case "Case 1: spiral / spiral (draft parameters)" base;
  describe_case "Case 2: node / spiral (w = 8000)"
    (Fluid.Params.with_sampling ~w:8000. base);
  describe_case "Case 3: spiral / node (w = 3000, Gd = 1)"
    (Fluid.Params.with_gains ~gd:1. (Fluid.Params.with_sampling ~w:3000. base));
  describe_case "Case 4: node / node (w = 30000)"
    (Fluid.Params.with_sampling ~w:30000. base);
  (* Case 5: land the increase subsystem exactly on the boundary
     a = 4 pm^2 C^2 / w^2. At the draft w = 2 the boundary needs an absurd
     gain, so use the w = 8000 switching line (as in Fig. 8) and solve for
     the Gi that puts a exactly on the threshold. *)
  let base5 = Fluid.Params.with_sampling ~w:8000. base in
  let gi_boundary =
    Fluid.Params.a_threshold base5
    /. (base5.Fluid.Params.ru *. float_of_int base5.Fluid.Params.n_flows)
  in
  let p5 = Fluid.Params.with_gains ~gi:gi_boundary base5 in
  describe_case
    (Printf.sprintf "Case 5: critical boundary (w = 8000, Gi = %g)" gi_boundary)
    p5;
  (* ERRATUM (see EXPERIMENTS.md): the paper claims the switching line
     x + k y = 0 is itself a trajectory "due to lambda_{1,2} = -1/k".
     Substituting lambda = -1/k into eqn (35) gives 1/k^2, never zero; at
     the boundary the repeated eigenvalue is -k*n/2 = -2/k, so the
     invariant line of the increase subsystem is y = -(2/k)x — twice as
     steep as the switching line (and it lies in the decrease region).
     Demonstrate both facts numerically. *)
  let k = Fluid.Params.k p5 in
  let cp = Fluid.Linearized.char_poly p5 Fluid.Linearized.Increase in
  Format.printf
    "Case-5 erratum check: char(-1/k) = %.4g (= 1/k^2 = %.4g, never a \
     root); char(-2/k) = %.2e (the actual repeated eigenvalue)@."
    (Poly.eval cp (-1. /. k))
    (1. /. (k *. k))
    (Poly.eval cp (-2. /. k));
  let sys = Fluid.Linearized.region_system p5 Fluid.Linearized.Increase in
  let x0 = -1e4 in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:2e-4 sys
      (Vec2.make x0 (-.2. /. k *. x0))
  in
  let max_rel_dev =
    Array.fold_left
      (fun acc (y : float array) ->
        let scale = Float.max 1e-6 (Float.abs y.(0)) *. 2. /. k in
        Float.max acc (Float.abs (y.(1) +. (2. /. k *. y.(0))) /. scale))
      0. tr.Phaseplane.Trajectory.sol.Ode.ys
  in
  Format.printf
    "the eigenline y = -(2/k)x IS invariant: max relative deviation %.2e@."
    max_rel_dev
