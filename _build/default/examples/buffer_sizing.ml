(* Buffer sizing for lossless Ethernet: the paper's Remarks after
   Theorem 1 as an engineering workflow. The bandwidth-delay-product rule
   is unsustainable when packets cannot be dropped; this example computes
   the Theorem-1 buffer across link speeds and flow counts and shows the
   trade-off against the warm-up time T0.

   Run with:  dune exec examples/buffer_sizing.exe *)

let mk ~n ~c =
  (* scale q0 with capacity like the worked example (q0 = C * 0.25 ms) *)
  Fluid.Params.make ~n_flows:n ~capacity:c ~q0:(2.5e-4 *. c)
    ~buffer:(5e-4 *. c) ~gi:4. ~gd:(1. /. 128.) ~ru:8e6 ()

let () =
  Format.printf
    "Required buffer (Theorem 1) vs the BDP rule (0.5 ms of capacity)@.@.";
  let rows = ref [] in
  List.iter
    (fun c ->
      List.iter
        (fun n ->
          let p = mk ~n ~c in
          let req = Fluid.Criterion.required_buffer p in
          let bdp = Fluid.Params.bdp_buffer p ~rtt:5e-4 in
          rows :=
            [
              Report.Table.si c;
              string_of_int n;
              Report.Table.si req;
              Report.Table.si bdp;
              Printf.sprintf "%.2fx" (req /. bdp);
              Printf.sprintf "%.2g s" (Fluid.Criterion.startup_time p);
            ]
            :: !rows)
        [ 10; 50; 200 ])
    [ 1e9; 10e9; 40e9; 100e9 ];
  Report.Table.print
    ~headers:[ "capacity"; "flows"; "required B"; "BDP"; "ratio"; "warm-up T0" ]
    ~rows:(List.rev !rows);

  (* The q0 trade-off of the Remarks: a small reference queue favours
     strong stability but prolongs the start-up. *)
  Format.printf "@.q0 trade-off at 10G / 50 flows (B fixed at 20 Mbit):@.@.";
  let base = Fluid.Params.with_buffer Fluid.Params.default 20e6 in
  let rows =
    List.map
      (fun q0 ->
        let p = Fluid.Params.with_q0 base q0 in
        let v = Fluid.Stability.analyze p in
        [
          Report.Table.si q0;
          Report.Table.si (Fluid.Criterion.required_buffer p);
          (if v.Fluid.Stability.strongly_stable then "yes" else "NO");
          Printf.sprintf "%.2g s" (Fluid.Criterion.startup_time p);
        ])
      [ 0.25e6; 0.5e6; 1e6; 2.5e6; 5e6 ]
  in
  Report.Table.print
    ~headers:[ "q0"; "required B"; "strongly stable"; "T0" ]
    ~rows;

  (* Gain retuning: shrink the required buffer at the cost of sluggish
     convergence (longer settling). *)
  Format.printf "@.gain retuning at B = 5 Mbit (the BDP buffer):@.@.";
  let p = Fluid.Params.default in
  let rows =
    List.map
      (fun (label, p') ->
        let v = Fluid.Stability.analyze p' in
        let settle =
          Control.Lti2.settling_time_2pct
            (Fluid.Linearized.second_order p' Fluid.Linearized.Decrease)
        in
        [
          label;
          Report.Table.si (Fluid.Criterion.required_buffer p');
          (if v.Fluid.Stability.strongly_stable then "yes" else "NO");
          Printf.sprintf "%.2g s" settle;
        ])
      [
        ("draft gains (Gi=4, Gd=1/128)", p);
        ("Gi = 0.19 (criterion-max)", Fluid.Params.with_gains ~gi:(0.97 *. Fluid.Criterion.gi_max p) p);
        ("Gd = 1/6 (criterion-min)", Fluid.Params.with_gains ~gd:(1.03 *. Fluid.Criterion.gd_min p) p);
      ]
  in
  Report.Table.print
    ~headers:[ "configuration"; "required B"; "strongly stable"; "settling (2%)" ]
    ~rows
