(* Hunting limit cycles with the Poincare machinery (paper Fig. 7).

   Three systems are probed on the switching-line section:
   1. the BCN fluid model at the draft parameters — a quasi-cycle: the
      return map contracts by a fraction of a percent per return, so the
      queue oscillates for thousands of rounds;
   2. a variable-structure system with an unstable focus inside the
      increase region — a genuine, orbitally stable limit cycle;
   3. the same system with the instability removed — plain convergence.

   Run with:  dune exec examples/limit_cycle_hunt.exe *)

open Numerics

let describe = function
  | Phaseplane.Limit_cycle.Converges_to_origin -> "converges to the origin"
  | Phaseplane.Limit_cycle.Cycle { s_star; period; multiplier; stable } ->
      Printf.sprintf
        "LIMIT CYCLE: s* = %.4f, period = %.4f, multiplier = %s, stable = %s"
        s_star period
        (match multiplier with Some m -> Printf.sprintf "%.3f" m | None -> "?")
        (match stable with Some b -> string_of_bool b | None -> "?")
  | Phaseplane.Limit_cycle.Diverges -> "diverges"
  | Phaseplane.Limit_cycle.Contracting { ratio; s_last } ->
      Printf.sprintf "slowly contracting: %.6f per return (still at %.3g)"
        ratio s_last
  | Phaseplane.Limit_cycle.Expanding { ratio; s_last } ->
      Printf.sprintf "expanding: %.6f per return (at %.3g)" ratio s_last
  | Phaseplane.Limit_cycle.Inconclusive msg -> "inconclusive: " ^ msg

let () =
  (* 1. the BCN system *)
  let p =
    Fluid.Params.with_buffer Fluid.Params.default
      (2. *. Fluid.Criterion.required_buffer Fluid.Params.default)
  in
  Format.printf "1. BCN fluid model (draft parameters):@.";
  let verdict = Dcecc_core.Analysis.probe_limit_cycle ~max_iters:60 p in
  Format.printf "   %s@." (describe verdict);
  let sec = Dcecc_core.Analysis.switching_section p in
  let sys = Fluid.Model.normalized_system p in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:0.005 sys (Fluid.Model.start_point p)
  in
  (match tr.Phaseplane.Trajectory.switch_crossings with
  | [] -> ()
  | { Phaseplane.Trajectory.cp; _ } :: _ ->
      let s0 = sec.Phaseplane.Poincare.coord_of cp in
      let hist =
        Phaseplane.Limit_cycle.amplitude_history ~t_max:0.05 sys sec ~n:25 ~s0
      in
      Format.printf "   amplitude history (bit/s on the section): ";
      List.iteri
        (fun i s -> if i mod 5 = 0 then Format.printf "%s " (Report.Table.si s))
        hist;
      Format.printf "@.");

  (* 2. the engineered limit cycle *)
  Format.printf "@.2. variable-structure system with an unstable focus:@.";
  let lc_sys, s0 = Dcecc_core.Figures.genuine_limit_cycle_system () in
  let lc_sec =
    Phaseplane.Poincare.line_section ~dir:Ode.Up ~normal:(Vec2.make 1. 0.1) ()
  in
  let verdict = Phaseplane.Limit_cycle.detect ~max_iters:400 lc_sys lc_sec ~s0 in
  Format.printf "   %s@." (describe verdict);
  (* convergence from both sides: seeds below and above the cycle *)
  (match verdict with
  | Phaseplane.Limit_cycle.Cycle { s_star; _ } ->
      List.iter
        (fun seed ->
          let iters =
            Phaseplane.Poincare.iterate lc_sys lc_sec ~n:12 seed
          in
          let last = List.fold_left (fun _ s -> s) seed iters in
          Format.printf
            "   seed %.2f -> after 12 returns: %.4f (cycle at %.4f)@." seed
            last s_star)
        [ 0.5 *. s_star; 2. *. s_star ]
  | _ -> ());

  (* 3. remove the instability: the same geometry, now a stable focus *)
  Format.printf "@.3. same system with a stable focus (m1 = -1):@.";
  let k = 0.1 in
  let sigma (pt : Vec2.t) = -.(pt.Vec2.x +. (k *. pt.Vec2.y)) in
  let stable_sys =
    Phaseplane.System.Switched
      {
        sigma;
        pos =
          (fun pt ->
            Vec2.make pt.Vec2.y ((-25. *. pt.Vec2.x) -. (1. *. pt.Vec2.y)));
        neg =
          (fun pt ->
            Vec2.make pt.Vec2.y
              (-2. *. (pt.Vec2.y +. 10.) *. (pt.Vec2.x +. (k *. pt.Vec2.y))));
      }
  in
  let verdict =
    Phaseplane.Limit_cycle.detect ~max_iters:400 stable_sys lc_sec ~s0:2.
  in
  Format.printf "   %s@." (describe verdict)
