(* Benchmark harness.

   Default run (what `dune exec bench/main.exe` produces):
   1. regenerates every figure and table of the paper — the experiment
      index of DESIGN.md §4 — printing the reproduced rows/series and the
      paper-vs-measured checks;
   2. runs a Bechamel micro-benchmark suite with one Test.make per
      experiment id, measuring that experiment's computational kernel.

   `--figures-only` / `--perf-only` restrict to one half;
   `--out DIR` additionally writes the figure data as CSVs. *)

let default = Fluid.Params.default

let big =
  Fluid.Params.with_buffer default (2. *. Fluid.Criterion.required_buffer default)

(* ------------------------------------------------------------------ *)
(* Part 1: figure regeneration                                         *)
(* ------------------------------------------------------------------ *)

let run_figures out =
  let t0 = Sys.time () in
  List.iter
    (fun (id, text) ->
      Printf.printf "################ %s ################\n%s\n" id text)
    (Dcecc_core.Figures.all ?out ());
  Printf.printf "[figure regeneration took %.1f s]\n\n" (Sys.time () -. t0)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel performance suite (one Test.make per experiment)   *)
(* ------------------------------------------------------------------ *)

let kernels () =
  let open Bechamel in
  (* Small deterministic kernels representative of each experiment's
     dominant computation. *)
  let fig3 () =
    (* taxonomy: classify the equilibrium of both regions *)
    ignore (Phaseplane.Singular.classify (Fluid.Linearized.jacobian default Fluid.Linearized.Increase));
    ignore (Phaseplane.Singular.classify (Fluid.Linearized.jacobian default Fluid.Linearized.Decrease))
  in
  let spiral_c = Fluid.Spiral.of_region default Fluid.Linearized.Increase in
  let fig4 () =
    ignore (Fluid.Spiral.extremum spiral_c ~x0:(-2.5e6) ~y0:5e8)
  in
  let node_c =
    Fluid.Node.of_region Dcecc_core.Figures.case4_params Fluid.Linearized.Decrease
  in
  let fig5 () = ignore (Fluid.Node.extremum node_c ~x0:1e6 ~y0:2e8) in
  let fig6 () = ignore (Fluid.Flowmap.first_overshoot default) in
  let lc_sys, _ = Dcecc_core.Figures.genuine_limit_cycle_system () in
  let lc_sec =
    Phaseplane.Poincare.line_section ~dir:Numerics.Ode.Up
      ~normal:(Numerics.Vec2.make 1. 0.1) ()
  in
  let fig7 () = ignore (Phaseplane.Poincare.return_map lc_sys lc_sec 2.0) in
  let fig8 () =
    ignore (Fluid.Flowmap.first_overshoot Dcecc_core.Figures.case2_params)
  in
  let fig9 () =
    ignore
      (Fluid.Flowmap.trace Dcecc_core.Figures.case3_params
         (Fluid.Model.start_point Dcecc_core.Figures.case3_params))
  in
  let fig10 () =
    ignore
      (Fluid.Flowmap.trace Dcecc_core.Figures.case4_params
         (Fluid.Model.start_point Dcecc_core.Figures.case4_params))
  in
  let t1 () = ignore (Fluid.Criterion.required_buffer default) in
  let v1 () =
    (* one millisecond of packet simulation at the validation parameters *)
    let p = Dcecc_core.Compare.validation_params in
    let cfg =
      {
        (Simnet.Runner.default_config ~t_end:1e-3 ~sample_dt:1e-4 p) with
        Simnet.Runner.enable_pause = false;
      }
    in
    ignore (Simnet.Runner.run cfg)
  in
  let v2 () =
    ignore (Control.Linear_baseline.analyze (Fluid.Params.loop_params default))
  in
  let a1 () = ignore (Fluid.Transient.measure ~horizon:1e-3 big) in
  let a2 () = ignore (Fluid.Delayed.simulate ~t_end:2e-3 ~tau:2e-6 big) in
  let a3 () =
    let sys = Fluid.Linearized.system default in
    ignore
      (Phaseplane.Trajectory.integrate
         ~solver:(Phaseplane.Trajectory.Fixed (Numerics.Ode.Rk4, 1e-6))
         ~t_max:5e-4 sys
         (Fluid.Model.start_point default))
  in
  let p1 () =
    let p = Fluid.Params.with_buffer default 15e6 in
    ignore (Simnet.Fera.run (Simnet.Fera.default_config ~t_end:2e-3 p))
  in
  let p2 () =
    ignore
      (Fluid.Aimd_fairness.iterate
         (Fluid.Aimd_fairness.Aimd { increase = 1e8; decrease = 0.2 })
         ~capacity:10e9 ~n:500
         { Fluid.Aimd_fairness.r1 = 9e9; r2 = 1e9 })
  in
  let m1 () =
    let p = Fluid.Params.with_buffer default 15e6 in
    ignore
      (Simnet.Multihop.run (Simnet.Multihop.default_config ~t_end:2e-3 p))
  in
  let b1 () =
    ignore (Fluid.Safe_region.classify default ~q:1e6 ~r:2e8)
  in
  let w1 () =
    let wl = Simnet.Workload.poisson ~id:0 ~mean_rate:2e9 ~seed:7 in
    let e = Simnet.Engine.create () in
    let count = ref 0 in
    Simnet.Workload.start wl e ~sink:(fun _e _p -> incr count);
    Simnet.Engine.run ~until:1e-3 e
  in
  (* substrate micro-kernels for the ablation notes *)
  let ode_step () =
    let f _t y = [| y.(1); -.y.(0) |] in
    ignore (Numerics.Ode.step Numerics.Ode.Rk4 f 0. [| 1.; 0. |] 0.01)
  in
  let nonlinear_excursion () =
    ignore (Fluid.Stability.first_excursion ~t_max:1e-3 big)
  in
  Test.make_grouped ~name:"dcecc"
    [
      Test.make ~name:"fig3_taxonomy" (Staged.stage fig3);
      Test.make ~name:"fig4_spiral" (Staged.stage fig4);
      Test.make ~name:"fig5_node" (Staged.stage fig5);
      Test.make ~name:"fig6_case1" (Staged.stage fig6);
      Test.make ~name:"fig7_limit_cycle" (Staged.stage fig7);
      Test.make ~name:"fig8_case2" (Staged.stage fig8);
      Test.make ~name:"fig9_case3" (Staged.stage fig9);
      Test.make ~name:"fig10_case4" (Staged.stage fig10);
      Test.make ~name:"t1_criterion" (Staged.stage t1);
      Test.make ~name:"v1_fluid_vs_packet" (Staged.stage v1);
      Test.make ~name:"v2_linear_vs_strong" (Staged.stage v2);
      Test.make ~name:"a1_transient_sampling" (Staged.stage a1);
      Test.make ~name:"a2_delay_margin" (Staged.stage a2);
      Test.make ~name:"a3_solver_ablation" (Staged.stage a3);
      Test.make ~name:"p1_paradigms" (Staged.stage p1);
      Test.make ~name:"p2_aimd_fairness" (Staged.stage p2);
      Test.make ~name:"w1_cross_traffic" (Staged.stage w1);
      Test.make ~name:"b1_safe_region" (Staged.stage b1);
      Test.make ~name:"m1_multihop" (Staged.stage m1);
      Test.make ~name:"kernel_rk4_step" (Staged.stage ode_step);
      Test.make ~name:"kernel_nonlinear_excursion"
        (Staged.stage nonlinear_excursion);
    ]

let run_perf () =
  let open Bechamel in
  Printf.printf "################ performance (Bechamel) ################\n";
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.2) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (kernels ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        let est =
          match Analyze.OLS.estimates v with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  let fmt_time ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
    else Printf.sprintf "%.1f ns" ns
  in
  Report.Table.print
    ~headers:[ "experiment kernel"; "time per run" ]
    ~rows:(List.map (fun (n, e) -> [ n; fmt_time e ]) rows)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let out =
    let rec find = function
      | "--out" :: dir :: _ -> Some dir
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  if not (has "--perf-only") then run_figures out;
  if not (has "--figures-only") then run_perf ()
