(* Seed sweep: how much does the sampled BCN control loop depend on
   which frames happen to be sampled?

   The paper's congestion point samples arriving frames with probability
   pm = 0.01; the fluid model treats that as a deterministic rate. Here
   the dumbbell scenario is replicated under seeded Bernoulli sampling
   ([Runner.replicate]) — every replica sees the same offered load but a
   different sampled subsequence — and the spread of the closed-loop
   metrics across seeds measures how far the stochastic loop wanders
   around the deterministic (fluid-faithful) run.

   The replicas are independent, so they fan out over the worker pool
   (size from DCECC_JOBS); results are byte-identical for any pool
   size.

   Run with:  dune exec examples/seed_sweep.exe *)

let replicas = 16

let () =
  let p = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:0.02 p) with
      Simnet.Runner.mode = Simnet.Source.Literal;
      initial_rate = 0.5 *. Fluid.Params.equilibrium_rate p;
    }
  in
  Format.printf
    "%d-flow dumbbell, 20 ms, literal AIMD, pm = %.2f: %d Bernoulli \
     sampling seeds@.@."
    p.Fluid.Params.n_flows p.Fluid.Params.pm replicas;
  let seeds = Array.init replicas (fun i -> 1 + i) in
  let results = Simnet.Runner.replicate ~seeds cfg in
  let deterministic = Simnet.Runner.run cfg in
  let metric name f =
    let vs = Array.map f results in
    let n = float_of_int replicas in
    let mean = Array.fold_left ( +. ) 0. vs /. n in
    let var =
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. vs /. n
    in
    let lo = Array.fold_left Float.min vs.(0) vs in
    let hi = Array.fold_left Float.max vs.(0) vs in
    [
      name;
      Printf.sprintf "%.4f" (f deterministic);
      Printf.sprintf "%.4f" mean;
      Printf.sprintf "%.4f" (sqrt var);
      Printf.sprintf "%.4f" lo;
      Printf.sprintf "%.4f" hi;
    ]
  in
  Report.Table.print
    ~headers:[ "metric"; "determ."; "mean"; "std"; "min"; "max" ]
    ~rows:
      [
        metric "utilization" (fun r -> r.Simnet.Runner.utilization);
        metric "fairness" (fun r ->
            Simnet.Runner.fairness r.Simnet.Runner.final_rates);
        metric "drops" (fun r -> float_of_int r.Simnet.Runner.drops);
        metric "PAUSE events" (fun r ->
            float_of_int r.Simnet.Runner.pause_on_events);
      ];
  Format.printf
    "@.Aggregate metrics (utilization, drops) barely move across seeds —@.\
     they are properties of the dynamics, as the fluid model assumes.@.\
     Fairness is the exception: which flows get sampled decides which@.\
     flows get throttled, so BCN's per-sample unfairness is itself a@.\
     random variable with a wide spread.@."
