(* Incast fan-in: the parallel-read traffic pattern of cluster file
   systems (Lustre/Panasas) that motivates the paper's homogeneity
   assumption. N servers answer a client simultaneously at full blast;
   the fan-in port congests instantly. Without congestion management the
   buffer overflows and frames are lost — fatal for storage traffic.
   BCN throttles the senders; PAUSE merely freezes them.

   The five control configurations are independent simulations, so they
   go through [Runner.run_many] as one batch and fan out over the worker
   pool (DCECC_JOBS); results are identical to running them one by one.

   Run with:  dune exec examples/incast_fanin.exe *)

open Numerics

let incast_config ~enable_bcn ~enable_pause ~buffer =
  let p =
    Fluid.Params.make ~n_flows:32 ~capacity:10e9 ~q0:2.5e6 ~buffer ~gi:4.
      ~gd:(1. /. 128.) ~ru:8e6 ()
  in
  {
    (Simnet.Runner.default_config ~t_end:0.01 p) with
    (* every server starts at twice its fair share: aggregated 2x the
       fan-in capacity *)
    Simnet.Runner.initial_rate = 2. *. Fluid.Params.equilibrium_rate p;
    mode = Simnet.Source.Literal;
    enable_bcn;
    enable_pause;
  }

let row ~label (r : Simnet.Runner.result) =
  let qmax = snd (Series.argmax r.Simnet.Runner.queue) in
  [
    label;
    string_of_int r.Simnet.Runner.drops;
    Report.Table.si r.Simnet.Runner.dropped_bits;
    Report.Table.si qmax;
    string_of_int r.Simnet.Runner.pause_on_events;
    Printf.sprintf "%.3f" r.Simnet.Runner.utilization;
    Printf.sprintf "%.3f" (Simnet.Runner.fairness r.Simnet.Runner.final_rates);
  ]

let () =
  Format.printf
    "32-to-1 incast at 2x overload on a 10G fan-in port (10 ms run)@.@.";
  let cases =
    [|
      ( "no control, BDP buffer",
        incast_config ~enable_bcn:false ~enable_pause:false ~buffer:5e6 );
      ( "PAUSE only, BDP buffer",
        incast_config ~enable_bcn:false ~enable_pause:true ~buffer:5e6 );
      ( "BCN, BDP buffer",
        incast_config ~enable_bcn:true ~enable_pause:false ~buffer:5e6 );
      ( "BCN + PAUSE, BDP buffer",
        incast_config ~enable_bcn:true ~enable_pause:true ~buffer:5e6 );
      ( "BCN + PAUSE, Theorem-1 buffer",
        incast_config ~enable_bcn:true ~enable_pause:true ~buffer:15e6 );
    |]
  in
  let results = Simnet.Runner.run_many (Array.map snd cases) in
  let rows =
    Array.to_list
      (Array.map2 (fun (label, _) r -> row ~label r) cases results)
  in
  Report.Table.print
    ~headers:
      [ "configuration"; "drops"; "lost"; "max queue"; "PAUSEs"; "util"; "fairness" ]
    ~rows;
  Format.printf
    "@.PAUSE alone avoids drops by freezing every server; BCN shapes the@.\
     rates instead, and with the Theorem-1 buffer nothing is lost while@.\
     the link stays busy.@."
